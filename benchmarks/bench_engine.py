"""Row vs vector vs columnar engine: speedups and differential checks.

The vectorized engine exists purely for throughput: every operator
processes ``RowBatch`` slices through compiled batch kernels instead of
pulling one tuple at a time through Python generators.  The columnar
engine goes one step further: typed column arrays with validity
bitmaps, dictionary-encoded strings, and selection vectors instead of
copies (docs/execution.md).  Correctness is non-negotiable — the
response-time simulation and QCC calibration are driven by
``WorkMeter`` totals, so all three engines must produce identical rows
*and* bit-identical metered work on every shape here.

Two composite gates, each a total-wall-clock ratio over its suite:

* ``SHAPES`` (numeric scan / filter / join / aggregate — the original
  acceptance shapes): row over vector must reach
  ``REPRO_BENCH_ENGINE_MIN`` (default 3x).  The columnar engine is
  timed on these too and reported, but not gated — both batch engines
  share the final tuple-materialisation boundary, which caps numeric
  col/vec around 1.6-1.9x (see docs/execution.md).
* ``COLUMNAR_SHAPES`` (dictionary predicates, grouping, DISTINCT —
  where dict codes and selection vectors change the algorithm, not
  just the constant): vector over columnar must reach
  ``REPRO_BENCH_ENGINE_COL_MIN`` (default 3x).

Per-shape timings, rows/sec, and per-batch memory (columnar
``storage_bytes`` vs a deep ``getsizeof`` of the same rows as tuples)
land in the JSON artifact for trend tracking (see BENCH_engine.json
for the committed baseline).  CI's smoke job relaxes both gates for
noisy shared runners.
"""

from __future__ import annotations

import json
import os
import random
import resource
import time
from sys import getsizeof

import pytest

from repro.sqlengine import Database, execute_plan, populate
from repro.sqlengine.types import Column, ColumnType, Schema
from repro.workload import BENCH_SCALE
from repro.workload.schema import table_specs

#: Composite row/vector speedup the numeric suite must demonstrate.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_ENGINE_MIN", "3.0"))
#: Composite vector/columnar speedup the columnar suite must demonstrate.
COL_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_ENGINE_COL_MIN", "3.0"))
#: Timing repetitions per (shape, engine); best-of is reported.
REPS = int(os.environ.get("REPRO_BENCH_ENGINE_REPS", "7"))
#: Optional path for the standalone JSON artifact.
ARTIFACT = os.environ.get("REPRO_BENCH_ENGINE_JSON", "")

ENGINES = ("row", "vector", "columnar")

#: The scan-filter-join-aggregate shapes of the original acceptance
#: criterion — numeric columns, unselective scans, tuple-heavy output.
SHAPES = (
    (
        "scan-filter",
        "SELECT l.linekey, l.extprice FROM lineitem l "
        "WHERE l.extprice > 300.0 AND l.quantity < 40",
    ),
    (
        "scan-project",
        "SELECT l.linekey, l.extprice * l.quantity, l.orderkey "
        "FROM lineitem l",
    ),
    (
        "join",
        "SELECT o.orderkey, c.nation, o.totalprice "
        "FROM orders o, customer c "
        "WHERE o.custkey = c.custkey AND o.totalprice > 100.0",
    ),
    (
        "join-agg",
        "SELECT c.nation, COUNT(*), SUM(o.totalprice) "
        "FROM orders o, customer c "
        "WHERE o.custkey = c.custkey GROUP BY c.nation",
    ),
    (
        "aggregate",
        "SELECT l.quantity, COUNT(*), SUM(l.extprice), AVG(l.extprice), "
        "MIN(l.extprice), MAX(l.extprice) FROM lineitem l "
        "GROUP BY l.quantity",
    ),
)

#: Shapes where the columnar layout changes the algorithm: LIKE / IN
#: evaluated once per dictionary entry instead of once per row,
#: grouping and DISTINCT over integer codes, COUNT(*) histograms.
#: These run over the bench-local ``tags`` table (the workload's
#: string columns only exist on the small tables) plus the workload's
#: own grouping / DISTINCT shapes.
COLUMNAR_SHAPES = (
    (
        "dict-like-agg",
        "SELECT COUNT(*), SUM(val), AVG(val) FROM tags "
        "WHERE tag LIKE '%1%'",
    ),
    (
        "dict-multi-like",
        "SELECT COUNT(*), AVG(val) FROM tags WHERE label LIKE '%1%' "
        "AND label NOT LIKE '%13%' AND tag LIKE 'tag%'",
    ),
    (
        "dict-complex-like",
        "SELECT id FROM tags WHERE label LIKE '%ab%0%4%'",
    ),
    (
        "dict-group",
        "SELECT tag, COUNT(*), SUM(val), MAX(val) FROM tags GROUP BY tag",
    ),
    (
        "count-group",
        "SELECT l.prodkey, COUNT(*) FROM lineitem l GROUP BY l.prodkey",
    ),
    (
        "dict-count-group",
        "SELECT tag, COUNT(*) FROM tags GROUP BY tag",
    ),
    (
        "distinct",
        "SELECT DISTINCT o.custkey FROM orders o",
    ),
    (
        "dict-distinct",
        "SELECT DISTINCT label FROM tags",
    ),
)


@pytest.fixture(scope="module")
def engine_db():
    database = Database(name="bench-engine")
    populate(database, table_specs(BENCH_SCALE), seed=7)

    # Bench-local string table: a large dictionary-encodable workload
    # (24 tags, 200 labels over BENCH_SCALE.large_rows rows).
    rng = random.Random(11)
    tags = [f"tag_{i:02d}" for i in range(24)]
    labels = [f"label_{i:04d}" for i in range(200)]
    database.create_table(
        "tags",
        Schema(
            [
                Column("id", ColumnType.INT),
                Column("tag", ColumnType.STR),
                Column("label", ColumnType.STR),
                Column("val", ColumnType.FLOAT),
            ]
        ),
    )
    database.load_rows(
        "tags",
        [
            (
                i,
                rng.choice(tags),
                rng.choice(labels),
                round(rng.uniform(0, 100), 2),
            )
            for i in range(BENCH_SCALE.large_rows)
        ],
    )
    database.analyze()
    return database


def _best_time(database, plan, engine):
    best = float("inf")
    result = None
    for _ in range(REPS):
        start = time.perf_counter()
        result = execute_plan(
            plan, database.storage, database.params, engine=engine
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure_suite(database, shapes):
    """Time every shape on all three engines; assert the differential."""
    out = {}
    totals = dict.fromkeys(ENGINES, 0.0)
    for name, sql in shapes:
        plan = database.explain(sql)[0].plan
        times, results = {}, {}
        for engine in ENGINES:
            times[engine], results[engine] = _best_time(
                database, plan, engine
            )
            totals[engine] += times[engine]

        # Differential invariant: identical rows, bit-identical meters,
        # across all three engines (none of these shapes has a LIMIT,
        # the one construct where the row engine meters less work).
        reference = results["vector"]
        ref_meter = reference.meter
        for engine in ("row", "columnar"):
            assert results[engine].rows == reference.rows, (name, engine)
            meter = results[engine].meter
            assert (meter.cpu_ms, meter.io_ms, meter.tuples_out) == (
                ref_meter.cpu_ms,
                ref_meter.io_ms,
                ref_meter.tuples_out,
            ), (name, engine)

        n = len(reference.rows)
        row_s, vec_s, col_s = (
            times["row"],
            times["vector"],
            times["columnar"],
        )
        out[name] = {
            "rows": n,
            "row_s": row_s,
            "vector_s": vec_s,
            "columnar_s": col_s,
            "row_rows_per_sec": n / row_s if row_s > 0 else None,
            "vector_rows_per_sec": n / vec_s if vec_s > 0 else None,
            "columnar_rows_per_sec": n / col_s if col_s > 0 else None,
            "speedup": row_s / vec_s if vec_s > 0 else None,
            "columnar_speedup": vec_s / col_s if col_s > 0 else None,
            "columnar_over_row": row_s / col_s if col_s > 0 else None,
        }
    return out, totals


def _deep_row_bytes(rows):
    """Deep ``getsizeof`` of a row batch: list + tuples + boxed values."""
    total = getsizeof(rows)
    seen = set()
    for row in rows:
        total += getsizeof(row)
        for value in row:
            if id(value) not in seen:
                seen.add(id(value))
                total += getsizeof(value)
    return total


def _memory_metrics(database, batch_size=1024):
    """Per-batch memory: columnar storage vs the same rows as tuples."""
    metrics = {}
    for table_name in ("lineitem", "tags"):
        table = database.storage.table(table_name)
        columns = table.columnar()
        count = min(batch_size, columns.n_rows)
        batch = columns.batch(0, count)
        rows = batch.materialize()
        col_bytes = batch.storage_bytes()
        row_bytes = _deep_row_bytes(rows)
        metrics[table_name] = {
            "batch_rows": count,
            "columnar_bytes": col_bytes,
            "row_bytes": row_bytes,
            "bytes_ratio": row_bytes / col_bytes if col_bytes else None,
        }
    metrics["ru_maxrss_kb"] = resource.getrusage(
        resource.RUSAGE_SELF
    ).ru_maxrss
    return metrics


def _measure(database):
    shapes, totals = _measure_suite(database, SHAPES)
    col_shapes, col_totals = _measure_suite(database, COLUMNAR_SHAPES)
    composite = (
        totals["row"] / totals["vector"]
        if totals["vector"] > 0
        else float("inf")
    )
    col_composite = (
        col_totals["vector"] / col_totals["columnar"]
        if col_totals["columnar"] > 0
        else float("inf")
    )
    return {
        "scale": {
            "large_rows": BENCH_SCALE.large_rows,
            "small_rows": BENCH_SCALE.small_rows,
        },
        "reps": REPS,
        "shapes": shapes,
        "columnar_shapes": col_shapes,
        "memory": _memory_metrics(database),
        "composite_speedup": composite,
        "columnar_composite_speedup": col_composite,
    }


def _print_suite(title, shapes):
    print(f"\n=== {title} ===")
    for name, shape in shapes.items():
        print(
            f"{name:17s} rows={shape['rows']:6d} "
            f"row={shape['row_s'] * 1e3:7.1f}ms "
            f"vec={shape['vector_s'] * 1e3:7.1f}ms "
            f"col={shape['columnar_s'] * 1e3:7.1f}ms "
            f"row/vec={shape['speedup']:5.2f}x "
            f"vec/col={shape['columnar_speedup']:5.2f}x"
        )


def test_engine_speedups(benchmark, engine_db):
    results = benchmark.pedantic(
        _measure, args=(engine_db,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(results)

    _print_suite(
        "Engine benchmark: numeric shapes (BENCH_SCALE)",
        results["shapes"],
    )
    print(
        f"composite row/vector speedup: "
        f"{results['composite_speedup']:.2f}x "
        f"(required: {MIN_SPEEDUP:.1f}x)"
    )
    _print_suite(
        "Engine benchmark: columnar shapes (BENCH_SCALE)",
        results["columnar_shapes"],
    )
    print(
        f"composite vector/columnar speedup: "
        f"{results['columnar_composite_speedup']:.2f}x "
        f"(required: {COL_MIN_SPEEDUP:.1f}x)"
    )
    for table_name in ("lineitem", "tags"):
        mem = results["memory"][table_name]
        print(
            f"memory per {mem['batch_rows']}-row {table_name} batch: "
            f"columnar={mem['columnar_bytes']} bytes "
            f"rows={mem['row_bytes']} bytes "
            f"({mem['bytes_ratio']:.1f}x smaller)"
        )

    if ARTIFACT:
        with open(ARTIFACT, "w") as handle:
            json.dump(results, handle, indent=2)
        print(f"artifact written to {ARTIFACT}")

    assert results["composite_speedup"] >= MIN_SPEEDUP, results
    assert (
        results["columnar_composite_speedup"] >= COL_MIN_SPEEDUP
    ), results
    # The columnar layout must also be smaller per batch, not just
    # faster: typed arrays + dict codes vs boxed tuples.
    for table_name in ("lineitem", "tags"):
        mem = results["memory"][table_name]
        assert mem["columnar_bytes"] < mem["row_bytes"], mem
