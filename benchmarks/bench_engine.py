"""Row vs vector engine: wall-clock speedup and differential check.

The vectorized engine exists purely for throughput: every operator
processes ``RowBatch`` slices through compiled batch kernels instead of
pulling one tuple at a time through Python generators.  Correctness is
non-negotiable — the response-time simulation and QCC calibration are
driven by ``WorkMeter`` totals, so both engines must produce identical
rows *and* bit-identical metered work (docs/execution.md).

This bench runs the canonical scan / filter / join / aggregate shapes
at BENCH_SCALE through both engines, asserts the differential
invariant on every shape, and requires a composite wall-clock speedup
of at least ``REPRO_BENCH_ENGINE_MIN`` (default 3x; CI's smoke job
relaxes to 1.5x for noisy shared runners).  Per-shape rows/sec land in
the JSON artifact for trend tracking (see BENCH_engine.json for the
committed baseline).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.sqlengine import Database, execute_plan, populate
from repro.workload import BENCH_SCALE
from repro.workload.schema import table_specs

#: Composite row/vector speedup the bench must demonstrate.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_ENGINE_MIN", "3.0"))
#: Timing repetitions per (shape, engine); best-of is reported.
REPS = int(os.environ.get("REPRO_BENCH_ENGINE_REPS", "7"))
#: Optional path for the standalone JSON artifact.
ARTIFACT = os.environ.get("REPRO_BENCH_ENGINE_JSON", "")

#: The scan-filter-join-aggregate shapes of the acceptance criterion.
SHAPES = (
    (
        "scan-filter",
        "SELECT l.linekey, l.extprice FROM lineitem l "
        "WHERE l.extprice > 300.0 AND l.quantity < 40",
    ),
    (
        "scan-project",
        "SELECT l.linekey, l.extprice * l.quantity, l.orderkey "
        "FROM lineitem l",
    ),
    (
        "join",
        "SELECT o.orderkey, c.nation, o.totalprice "
        "FROM orders o, customer c "
        "WHERE o.custkey = c.custkey AND o.totalprice > 100.0",
    ),
    (
        "join-agg",
        "SELECT c.nation, COUNT(*), SUM(o.totalprice) "
        "FROM orders o, customer c "
        "WHERE o.custkey = c.custkey GROUP BY c.nation",
    ),
    (
        "aggregate",
        "SELECT l.quantity, COUNT(*), SUM(l.extprice), AVG(l.extprice), "
        "MIN(l.extprice), MAX(l.extprice) FROM lineitem l "
        "GROUP BY l.quantity",
    ),
)


@pytest.fixture(scope="module")
def engine_db():
    database = Database(name="bench-engine")
    populate(database, table_specs(BENCH_SCALE), seed=7)
    return database


def _best_time(database, plan, engine):
    best = float("inf")
    result = None
    for _ in range(REPS):
        start = time.perf_counter()
        result = execute_plan(
            plan, database.storage, database.params, engine=engine
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure(database):
    shapes = {}
    total_row = total_vec = 0.0
    for name, sql in SHAPES:
        plan = database.explain(sql)[0].plan
        row_s, row_result = _best_time(database, plan, "row")
        vec_s, vec_result = _best_time(database, plan, "vector")

        # Differential invariant: identical rows, bit-identical meters.
        assert row_result.rows == vec_result.rows, name
        rm, vm = row_result.meter, vec_result.meter
        assert (rm.cpu_ms, rm.io_ms, rm.tuples_out) == (
            vm.cpu_ms,
            vm.io_ms,
            vm.tuples_out,
        ), name

        total_row += row_s
        total_vec += vec_s
        n = len(row_result.rows)
        shapes[name] = {
            "rows": n,
            "row_s": row_s,
            "vector_s": vec_s,
            "row_rows_per_sec": n / row_s if row_s > 0 else None,
            "vector_rows_per_sec": n / vec_s if vec_s > 0 else None,
            "speedup": row_s / vec_s if vec_s > 0 else None,
        }
    composite = total_row / total_vec if total_vec > 0 else float("inf")
    return {
        "scale": {
            "large_rows": BENCH_SCALE.large_rows,
            "small_rows": BENCH_SCALE.small_rows,
        },
        "reps": REPS,
        "shapes": shapes,
        "composite_speedup": composite,
    }


def test_engine_vector_speedup(benchmark, engine_db):
    results = benchmark.pedantic(
        _measure, args=(engine_db,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(results)

    print("\n=== Engine benchmark: row vs vector (BENCH_SCALE) ===")
    for name, shape in results["shapes"].items():
        print(
            f"{name:13s} rows={shape['rows']:6d} "
            f"row={shape['row_s'] * 1e3:7.1f}ms "
            f"vec={shape['vector_s'] * 1e3:7.1f}ms "
            f"speedup={shape['speedup']:.2f}x"
        )
    print(f"composite speedup: {results['composite_speedup']:.2f}x "
          f"(required: {MIN_SPEEDUP:.1f}x)")

    if ARTIFACT:
        with open(ARTIFACT, "w") as handle:
            json.dump(results, handle, indent=2)
        print(f"artifact written to {ARTIFACT}")

    assert results["composite_speedup"] >= MIN_SPEEDUP, results
