"""Ablation A2: load-distribution granularity (Sections 4.1 / 4.2).

A hot stream of one federated join (the paper's Q6 shape) hits a
replica federation whose servers heat up under their own traffic
(induced load).  Routing every instance to the cheapest plan creates
the hot spot the paper warns about; round-robin over near-cost plans
spreads it.

Variants: no balancing / fragment-level / global-level.

Shape: both balancing levels beat no balancing; global-level must be at
least as good as fragment-level for multi-fragment joins (it can rotate
whole server sets).
"""

from __future__ import annotations


from repro.core import LoadBalanceConfig, QCCConfig
from repro.core.cycle import CycleConfig
from repro.harness import ascii_table, mean
from repro.harness.deployment import build_replica_federation
from repro.workload import BENCH_SCALE

Q6 = (
    "SELECT o.priority, COUNT(*) AS n FROM orders o "
    "JOIN lineitem l ON o.orderkey = l.orderkey "
    "WHERE o.totalprice > 8000 AND l.quantity > 40 GROUP BY o.priority"
)

QUERIES_PER_RUN = 24
INDUCED_GAIN = 0.0005
INDUCED_DECAY_MS = 8_000.0

#: Freeze the calibration cycle for the run: calibration itself also
#: spreads load (slowly, by reacting to heat); the ablation isolates the
#: *rotation* mechanism of Section 4, which acts per-query.
FROZEN_CYCLE = CycleConfig(
    base_interval_ms=600_000.0,
    min_interval_ms=600_000.0,
    max_interval_ms=600_000.0,
)


def _run_variant(fragment: bool, global_: bool):
    config = QCCConfig(
        enable_fragment_balancing=fragment,
        enable_global_balancing=global_,
        load_balance=LoadBalanceConfig(band=0.6, workload_threshold=0.0),
        cycle=FROZEN_CYCLE,
        drift_trigger_ratio=0.0,
    )
    deployment = build_replica_federation(
        scale=BENCH_SCALE,
        qcc_config=config,
        induced_load=True,
        induced_gain=INDUCED_GAIN,
        induced_decay_ms=INDUCED_DECAY_MS,
    )
    responses = []
    usage = {}
    for _ in range(QUERIES_PER_RUN):
        result = deployment.integrator.submit(Q6)
        responses.append(result.response_ms)
        for outcome in result.fragments.values():
            server = outcome.option.server
            usage[server] = usage.get(server, 0) + 1
    return mean(responses), usage


def _measure():
    return {
        "no balancing": _run_variant(False, False),
        "fragment-level": _run_variant(True, False),
        "global-level": _run_variant(False, True),
    }


def test_ablation_load_distribution_granularity(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print("\n=== Ablation A2: load distribution granularity (hot Q6 stream) ===")
    rows = [
        [name, response, str(usage)]
        for name, (response, usage) in results.items()
    ]
    print(ascii_table(["Variant", "Mean response (ms)", "Server usage"], rows))

    none_ms, none_usage = results["no balancing"]
    frag_ms, frag_usage = results["fragment-level"]
    glob_ms, glob_usage = results["global-level"]

    # Without balancing (and with frozen calibration) the stream
    # concentrates on one server per fragment: the paper's hot spot.
    assert len(none_usage) == 2
    # Balancing spreads across replicas...
    assert len(frag_usage) > 2
    assert len(glob_usage) > 2
    # ...and relieves the self-inflicted hot spot.
    assert frag_ms < none_ms
    assert glob_ms < none_ms
