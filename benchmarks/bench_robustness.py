"""Robustness: the headline gain is not an artifact of one seed.

Reruns the Figure 10 comparison (QCC vs Fixed Assignment 1) under
several data/workload seeds and checks that the average gain stays in a
healthy band for every one of them.  A reproduction whose result
depends on the random tables it happened to generate would be worthless.
"""

from __future__ import annotations

import os

from repro.baselines import fixed_assignment_deployment, qcc_deployment
from repro.harness import (
    DEFAULT_SERVER_SPECS,
    ascii_table,
    build_databases,
    gains_by_phase,
    mean,
    run_phase,
)
from repro.workload import BENCH_SCALE, PHASES, build_workload


def _seeds_from_env(default=(7, 23, 101)):
    """Explicit seed set, overridable via ``REPRO_BENCH_SEEDS=7,23,101``.

    The seeds are always explicit — the sweep never samples from global
    random state — so a CI failure names the exact seed to rerun.
    """
    raw = os.environ.get("REPRO_BENCH_SEEDS", "").strip()
    if not raw:
        return default
    return tuple(int(part) for part in raw.split(",") if part.strip())


SEEDS = _seeds_from_env()
INSTANCES_PER_TYPE = 3
#: A reduced phase set keeps the three-seed sweep tractable while still
#: covering idle, S3-loaded, S1-loaded and all-loaded regimes.
PHASE_SUBSET = (PHASES[0], PHASES[1], PHASES[4], PHASES[7])


def _gain_for_seed(seed: int) -> float:
    databases = build_databases(DEFAULT_SERVER_SPECS, BENCH_SCALE, seed=seed)
    workload = build_workload(instances_per_type=INSTANCES_PER_TYPE, seed=seed)
    fixed = fixed_assignment_deployment(
        scale=BENCH_SCALE, seed=seed, prebuilt_databases=databases
    )
    calibrated = qcc_deployment(
        scale=BENCH_SCALE, seed=seed, prebuilt_databases=databases
    )
    fixed_sweep = {
        phase.name: run_phase(fixed, workload, phase)
        for phase in PHASE_SUBSET
    }
    qcc_sweep = {
        phase.name: run_phase(calibrated, workload, phase)
        for phase in PHASE_SUBSET
    }
    gains = gains_by_phase(fixed_sweep, qcc_sweep)
    return mean(list(gains.values()))


def _measure():
    return {seed: _gain_for_seed(seed) for seed in SEEDS}


def test_headline_gain_is_seed_robust(benchmark, bench_databases):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    print("\n=== Robustness: Figure 10 average gain across seeds ===")
    print(
        ascii_table(
            ["Seed", "Average gain (%)"],
            [[seed, gain] for seed, gain in results.items()],
        )
    )
    values = list(results.values())
    print(f"mean across seeds: {mean(values):.1f}%")

    # Every seed individually shows a solid gain...
    for seed, gain in results.items():
        assert gain > 25.0, (seed, gain)
    # ...and the cross-seed mean sits in the paper's neighbourhood.
    assert 30.0 <= mean(values) <= 75.0
