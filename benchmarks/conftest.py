"""Shared fixtures for the experiment benchmarks.

Every bench regenerates one of the paper's tables/figures.  The loaded
sample databases (the dominant setup cost) are built once per session and
shared read-only across deployments; expensive phase sweeps are cached in
``sweep_cache`` so Figures 10/11 and Table 2 do not recompute the same
QCC sweep three times.
"""

from __future__ import annotations

import os

import pytest

from repro.baselines import (
    fixed_assignment_deployment,
    preferred_server_deployment,
    qcc_deployment,
)
from repro.harness import (
    DEFAULT_SERVER_SPECS,
    build_databases,
    dynamic_assignment,
    run_phase,
)
from repro.workload import BENCH_SCALE, PHASES, QUERY_TYPES, build_workload

#: Instances per query type in benchmark workloads (paper: 10).  CI's
#: bench-smoke job shrinks this via the environment to keep the per-PR
#: perf signal fast.
INSTANCES_PER_TYPE = int(os.environ.get("REPRO_BENCH_INSTANCES", "5"))


@pytest.fixture(scope="session")
def bench_databases():
    return build_databases(DEFAULT_SERVER_SPECS, BENCH_SCALE, seed=7)


@pytest.fixture(scope="session")
def bench_workload():
    return build_workload(instances_per_type=INSTANCES_PER_TYPE, seed=7)


@pytest.fixture(scope="session")
def sweep_cache():
    return {}


def qcc_sweep_with_assignments(databases, workload):
    """One QCC deployment swept over all phases, collecting both the
    response times and the per-phase dynamic assignment of each query
    type (the data behind Figures 10/11 and Table 2)."""
    deployment = qcc_deployment(scale=BENCH_SCALE, prebuilt_databases=databases)
    sweep = {}
    assignments = {t.name: [] for t in QUERY_TYPES}
    for phase in PHASES:
        sweep[phase.name] = run_phase(deployment, workload, phase)
        for template in QUERY_TYPES:
            servers = dynamic_assignment(deployment, template.instance(0))
            assignments[template.name].append("/".join(servers))
    return sweep, assignments


def get_qcc_sweep(cache, databases, workload):
    if "qcc" not in cache:
        cache["qcc"] = qcc_sweep_with_assignments(databases, workload)
    return cache["qcc"]


def run_baseline_sweep(factory, databases, workload):
    deployment = factory(scale=BENCH_SCALE, prebuilt_databases=databases)
    sweep = {}
    for phase in PHASES:
        sweep[phase.name] = run_phase(deployment, workload, phase)
    return sweep


def get_fixed_sweep(cache, databases, workload):
    if "fixed" not in cache:
        cache["fixed"] = run_baseline_sweep(
            fixed_assignment_deployment, databases, workload
        )
    return cache["fixed"]


def get_preferred_sweep(cache, databases, workload):
    if "preferred" not in cache:
        cache["preferred"] = run_baseline_sweep(
            preferred_server_deployment, databases, workload
        )
    return cache["preferred"]
