"""Ablation A1: calibration-cycle length (Section 3.4).

"The frequency of re-calibration does have impact to effectiveness of
QCC in influencing II query optimization."  We let QCC rely purely on
its timer-driven cycles (no forced recalibration between passes) while
the load phases flip, and compare:

* ``static-long``  — recalibrate every 60 s (stale factors after shifts);
* ``static-short`` — recalibrate every 250 ms (always fresh);
* ``dynamic``      — the paper's volatility-adaptive cycle.

Shape: the long static cycle responds worst; the dynamic controller
lands near the short cycle without its fixed cost.
"""

from __future__ import annotations


from repro.baselines import qcc_deployment
from repro.core import QCCConfig
from repro.core.cycle import CycleConfig
from repro.harness import ascii_table, mean, run_workload_once
from repro.workload import BENCH_SCALE, LOAD_LEVEL, PHASES, build_workload

#: A phase trajectory with real load shifts (idle -> S3 hot -> S1+S2 hot).
TRAJECTORY = [PHASES[0], PHASES[1], PHASES[6], PHASES[1]]


def _run_variant(cycle: CycleConfig, databases, workload, drift: float = 0.0):
    deployment = qcc_deployment(
        scale=BENCH_SCALE,
        prebuilt_databases=databases,
        qcc_config=QCCConfig(cycle=cycle, drift_trigger_ratio=drift),
    )
    measured = []
    for phase in TRAJECTORY:
        deployment.set_load(
            phase.levels(tuple(deployment.server_names()), LOAD_LEVEL)
        )
        deployment.clock.advance(3_000.0)
        # two adaptation passes driven only by tick() timers
        run_workload_once(deployment, workload)
        run_workload_once(deployment, workload)
        outcomes = run_workload_once(deployment, workload)
        measured.extend(o.response_ms for o in outcomes if not o.failed)
    return mean(measured)


def _measure(databases, workload):
    long_cycle = CycleConfig(
        base_interval_ms=60_000.0,
        min_interval_ms=60_000.0,
        max_interval_ms=60_000.0,
    )
    short_cycle = CycleConfig(
        base_interval_ms=250.0,
        min_interval_ms=250.0,
        max_interval_ms=250.0,
    )
    adaptive_cycle = CycleConfig(
        base_interval_ms=2_000.0,
        min_interval_ms=250.0,
        max_interval_ms=30_000.0,
    )
    return {
        "static-long": _run_variant(long_cycle, databases, workload),
        "static-short": _run_variant(short_cycle, databases, workload),
        # the paper's controller: volatility-scaled interval plus an
        # early close when live ratios drift from the active factors
        "dynamic": _run_variant(
            adaptive_cycle, databases, workload, drift=2.0
        ),
    }


def test_ablation_calibration_cycle(benchmark, bench_databases):
    workload = build_workload(instances_per_type=4, seed=7)
    results = benchmark.pedantic(
        _measure, args=(bench_databases, workload), rounds=1, iterations=1
    )

    print("\n=== Ablation A1: calibration cycle length ===")
    print(
        ascii_table(
            ["Variant", "Mean response (ms)"],
            [[name, value] for name, value in results.items()],
        )
    )

    assert results["static-long"] > results["static-short"]
    # dynamic tracks the short cycle's quality (within 20%)
    assert results["dynamic"] <= results["static-short"] * 1.2
