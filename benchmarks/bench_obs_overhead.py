"""Observability overhead: the no-op sink must be free, tracing cheap.

The obs layer sits on the hot path of every federated query (integrator,
meta-wrapper, QCC, patroller all emit into it), so its disabled-by-
default null sink must cost nothing measurable.  This bench runs the
same workload three ways — null sink, metrics only, metrics + tracing —
and prints the per-query cost of each level of visibility.

The second bench gates the operator profiler's dispatch: with profiling
disabled (the default), ``PhysicalPlan.rows``/``rows_batched`` add one
attribute load and one identity check per stream open.  It measures the
workload with the dispatch patched out entirely (the pre-profiler
baseline), with the dispatch in place but disabled, and with profiling
on, and enforces disabled ≤ ``REPRO_BENCH_OBS_MAX`` × baseline
(default 1.03, i.e. a 3% budget).  ``REPRO_BENCH_OBS_JSON`` writes the
measurements as a JSON artifact; ``REPRO_BENCH_OBS_REPS`` sets the
min-of-N repeat count.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager

import repro.obs as obs
from repro.obs.profile import disable_profiling, enable_profiling
from repro.harness import ascii_table, build_federation
from repro.sqlengine.physical import PhysicalPlan
from repro.workload import BENCH_SCALE, build_workload

QUERIES = 40


def _run_workload(databases) -> float:
    deployment = build_federation(
        scale=BENCH_SCALE, prebuilt_databases=databases
    )
    workload = build_workload(instances_per_type=max(1, QUERIES // 4), seed=7)
    start = time.perf_counter()
    for instance in workload[:QUERIES]:
        deployment.integrator.submit(instance.sql, label=instance.label)
    return time.perf_counter() - start


def _measure(databases):
    results = {}
    obs.disable()
    results["null sink (default)"] = _run_workload(databases)
    try:
        obs.configure(metrics=True, tracing=False, log_level=None)
        results["metrics only"] = _run_workload(databases)
        obs.configure(metrics=True, tracing=True, log_level=None)
        results["metrics + tracing"] = _run_workload(databases)
        traced = obs.get_obs().tracer.last()
    finally:
        obs.disable()
    return results, traced


def test_obs_overhead(benchmark, bench_databases):
    results, traced = benchmark.pedantic(
        _measure, args=(bench_databases,), rounds=1, iterations=1
    )

    baseline = results["null sink (default)"]
    print("\n=== Observability overhead (%d-query workload) ===" % QUERIES)
    rows = [
        [
            mode,
            f"{seconds * 1e3:.1f}",
            f"{seconds / QUERIES * 1e6:.0f}",
            f"{100 * (seconds - baseline) / baseline:+.1f}%",
        ]
        for mode, seconds in results.items()
    ]
    print(
        ascii_table(
            ["Sink", "Workload (ms)", "Per query (µs)", "vs null"], rows
        )
    )

    # The fully-enabled run must actually have produced a trace...
    assert traced is not None
    assert traced.find("dispatch")
    # ...and even full tracing must stay within 2x of the null sink (the
    # real expectation is a few percent; 2x only guards against the
    # instrumentation accidentally becoming the workload).
    assert results["metrics + tracing"] < 2.0 * baseline


@contextmanager
def _dispatch_patched_out():
    """Remove the profiler check from operator dispatch entirely.

    Replaces the public ``rows``/``rows_batched`` dispatchers with bare
    pass-throughs to the private implementations — the code shape the
    executor had before the profiler existed, i.e. the true no-obs
    baseline for the dispatch gate.
    """
    original_rows = PhysicalPlan.rows
    original_batched = PhysicalPlan.rows_batched
    PhysicalPlan.rows = lambda self, ctx: self._rows(ctx)
    PhysicalPlan.rows_batched = lambda self, ctx: self._rows_batched(ctx)
    try:
        yield
    finally:
        PhysicalPlan.rows = original_rows
        PhysicalPlan.rows_batched = original_batched


#: Executed repeatedly against one server database for the dispatch
#: gate: pure engine work (scan + join + aggregate), no federation
#: machinery, so run-to-run noise is small enough for a tight budget.
_GATE_SQL = (
    "SELECT o.priority, COUNT(*) AS cnt, SUM(l.extprice) AS revenue "
    "FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey "
    "WHERE o.totalprice > 5000 GROUP BY o.priority"
)


def _measure_profiler(databases):
    database = databases["S1"]
    plan = database.explain(_GATE_SQL)[0].plan
    reps = int(os.environ.get("REPRO_BENCH_OBS_REPS", "5"))
    execs = int(os.environ.get("REPRO_BENCH_OBS_EXECS", "10"))

    def timed_exec() -> float:
        start = time.perf_counter()
        database.run_plan(plan)
        return time.perf_counter() - start

    obs.disable()
    disable_profiling()
    raw = []
    disabled = []
    profiled = []
    try:
        for _ in range(3):
            timed_exec()  # warm caches before the first timed pair
        # Back-to-back pairs: machine drift (frequency scaling, noisy
        # CI neighbours) spans whole milliseconds-apart pairs, so the
        # per-pair ratio cancels it; the gate uses the median ratio.
        for _ in range(execs * reps):
            with _dispatch_patched_out():
                raw.append(timed_exec())
            disabled.append(timed_exec())
            enable_profiling()
            try:
                profiled.append(timed_exec())
            finally:
                disable_profiling()
    finally:
        disable_profiling()
    return {
        "no-obs baseline (dispatch removed)": raw,
        "profiling disabled (default)": disabled,
        "profiling enabled": profiled,
    }, execs * reps


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def test_profiler_dispatch_overhead(benchmark, bench_databases):
    samples, execs = benchmark.pedantic(
        _measure_profiler, args=(bench_databases,), rounds=1, iterations=1
    )

    raw = samples["no-obs baseline (dispatch removed)"]
    max_ratio = float(os.environ.get("REPRO_BENCH_OBS_MAX", "1.03"))
    ratio = _median(
        d / r for r, d in zip(raw, samples["profiling disabled (default)"])
    )
    profiled_ratio = _median(
        p / r for r, p in zip(raw, samples["profiling enabled"])
    )
    results = {mode: min(times) for mode, times in samples.items()}
    baseline = results["no-obs baseline (dispatch removed)"]

    print(
        "\n=== Profiler dispatch overhead "
        "(%d paired plan executions) ===" % execs
    )
    rows = [
        [
            mode,
            f"{seconds * 1e3:.3f}",
            f"{100 * (seconds - baseline) / baseline:+.2f}%",
        ]
        for mode, seconds in results.items()
    ]
    print(
        ascii_table(["Mode", "Best exec (ms)", "vs baseline"], rows)
    )
    print(
        f"median paired ratios: disabled/baseline {ratio:.4f} "
        f"(max {max_ratio:.2f}), enabled/baseline {profiled_ratio:.4f}"
    )

    artifact = os.environ.get("REPRO_BENCH_OBS_JSON")
    if artifact:
        with open(artifact, "w") as handle:
            json.dump(
                {
                    "plan_executions": execs,
                    "best_exec_seconds": results,
                    "disabled_over_baseline": ratio,
                    "enabled_over_baseline": profiled_ratio,
                    "max_ratio": max_ratio,
                },
                handle,
                indent=2,
            )

    # The gate: the disabled dispatch must be indistinguishable from no
    # instrumentation at all (within the noise budget).
    assert ratio <= max_ratio, (
        f"disabled-profiler dispatch costs {100 * (ratio - 1):.1f}% "
        f"(budget {100 * (max_ratio - 1):.1f}%)"
    )
    # Profiling on may legitimately cost more, but must stay sane.
    assert results["profiling enabled"] < 2.0 * baseline
