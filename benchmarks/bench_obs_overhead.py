"""Observability overhead: the no-op sink must be free, tracing cheap.

The obs layer sits on the hot path of every federated query (integrator,
meta-wrapper, QCC, patroller all emit into it), so its disabled-by-
default null sink must cost nothing measurable.  This bench runs the
same workload three ways — null sink, metrics only, metrics + tracing —
and prints the per-query cost of each level of visibility.

The second bench gates the operator profiler's dispatch: with profiling
disabled (the default), ``PhysicalPlan.rows``/``rows_batched`` add one
attribute load and one identity check per stream open.  It measures the
workload with the dispatch patched out entirely (the pre-profiler
baseline), with the dispatch in place but disabled, and with profiling
on, and enforces disabled ≤ ``REPRO_BENCH_OBS_MAX`` × baseline
(default 1.03, i.e. a 3% budget).  ``REPRO_BENCH_OBS_JSON`` writes the
measurements as a JSON artifact; ``REPRO_BENCH_OBS_REPS`` sets the
min-of-N repeat count.

The third bench applies the same discipline to the scheduler's queue
hooks: every :class:`~repro.sim.sched.ServerQueue` lifecycle emission
site is guarded by one ``self.events is not NULL_QUEUE_EVENTS``
identity check.  It times a synthetic fifo+ps workload (submissions,
completions, hedge-style cancellations) against patched-in pre-hook
method copies — the queue exactly as it was before the span layer — and
gates the default (hooks present, null observer) under the same
``REPRO_BENCH_OBS_MAX`` budget.  ``REPRO_BENCH_SCHED_JSON`` writes that
bench's artifact.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager

import repro.obs as obs
from repro.obs.profile import disable_profiling, enable_profiling
from repro.harness import ascii_table, build_federation
from repro.sim.sched import (
    Completion,
    EventScheduler,
    QueueEvents,
    ServerQueue,
    _Job,
)
from repro.sqlengine.physical import PhysicalPlan
from repro.workload import BENCH_SCALE, build_workload

QUERIES = 40


def _run_workload(databases) -> float:
    deployment = build_federation(
        scale=BENCH_SCALE, prebuilt_databases=databases
    )
    workload = build_workload(instances_per_type=max(1, QUERIES // 4), seed=7)
    start = time.perf_counter()
    for instance in workload[:QUERIES]:
        deployment.integrator.submit(instance.sql, label=instance.label)
    return time.perf_counter() - start


def _measure(databases):
    results = {}
    obs.disable()
    results["null sink (default)"] = _run_workload(databases)
    try:
        obs.configure(metrics=True, tracing=False, log_level=None)
        results["metrics only"] = _run_workload(databases)
        obs.configure(metrics=True, tracing=True, log_level=None)
        results["metrics + tracing"] = _run_workload(databases)
        traced = obs.get_obs().tracer.last()
    finally:
        obs.disable()
    return results, traced


def test_obs_overhead(benchmark, bench_databases):
    results, traced = benchmark.pedantic(
        _measure, args=(bench_databases,), rounds=1, iterations=1
    )

    baseline = results["null sink (default)"]
    print("\n=== Observability overhead (%d-query workload) ===" % QUERIES)
    rows = [
        [
            mode,
            f"{seconds * 1e3:.1f}",
            f"{seconds / QUERIES * 1e6:.0f}",
            f"{100 * (seconds - baseline) / baseline:+.1f}%",
        ]
        for mode, seconds in results.items()
    ]
    print(
        ascii_table(
            ["Sink", "Workload (ms)", "Per query (µs)", "vs null"], rows
        )
    )

    # The fully-enabled run must actually have produced a trace...
    assert traced is not None
    assert traced.find("dispatch")
    # ...and even full tracing must stay within 2x of the null sink (the
    # real expectation is a few percent; 2x only guards against the
    # instrumentation accidentally becoming the workload).
    assert results["metrics + tracing"] < 2.0 * baseline


@contextmanager
def _dispatch_patched_out():
    """Remove the profiler check from operator dispatch entirely.

    Replaces the public ``rows``/``rows_batched`` dispatchers with bare
    pass-throughs to the private implementations — the code shape the
    executor had before the profiler existed, i.e. the true no-obs
    baseline for the dispatch gate.
    """
    original_rows = PhysicalPlan.rows
    original_batched = PhysicalPlan.rows_batched
    PhysicalPlan.rows = lambda self, ctx: self._rows(ctx)
    PhysicalPlan.rows_batched = lambda self, ctx: self._rows_batched(ctx)
    try:
        yield
    finally:
        PhysicalPlan.rows = original_rows
        PhysicalPlan.rows_batched = original_batched


#: Executed repeatedly against one server database for the dispatch
#: gate: pure engine work (scan + join + aggregate), no federation
#: machinery, so run-to-run noise is small enough for a tight budget.
_GATE_SQL = (
    "SELECT o.priority, COUNT(*) AS cnt, SUM(l.extprice) AS revenue "
    "FROM orders o JOIN lineitem l ON o.orderkey = l.orderkey "
    "WHERE o.totalprice > 5000 GROUP BY o.priority"
)


def _measure_profiler(databases):
    database = databases["S1"]
    plan = database.explain(_GATE_SQL)[0].plan
    reps = int(os.environ.get("REPRO_BENCH_OBS_REPS", "5"))
    execs = int(os.environ.get("REPRO_BENCH_OBS_EXECS", "10"))

    def timed_exec() -> float:
        start = time.perf_counter()
        database.run_plan(plan)
        return time.perf_counter() - start

    obs.disable()
    disable_profiling()
    raw = []
    disabled = []
    profiled = []
    try:
        for _ in range(3):
            timed_exec()  # warm caches before the first timed pair
        # Back-to-back pairs: machine drift (frequency scaling, noisy
        # CI neighbours) spans whole milliseconds-apart pairs, so the
        # per-pair ratio cancels it; the gate uses the median ratio.
        for _ in range(execs * reps):
            with _dispatch_patched_out():
                raw.append(timed_exec())
            disabled.append(timed_exec())
            enable_profiling()
            try:
                profiled.append(timed_exec())
            finally:
                disable_profiling()
    finally:
        disable_profiling()
    return {
        "no-obs baseline (dispatch removed)": raw,
        "profiling disabled (default)": disabled,
        "profiling enabled": profiled,
    }, execs * reps


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def test_profiler_dispatch_overhead(benchmark, bench_databases):
    samples, execs = benchmark.pedantic(
        _measure_profiler, args=(bench_databases,), rounds=1, iterations=1
    )

    raw = samples["no-obs baseline (dispatch removed)"]
    max_ratio = float(os.environ.get("REPRO_BENCH_OBS_MAX", "1.03"))
    ratio = _median(
        d / r for r, d in zip(raw, samples["profiling disabled (default)"])
    )
    profiled_ratio = _median(
        p / r for r, p in zip(raw, samples["profiling enabled"])
    )
    results = {mode: min(times) for mode, times in samples.items()}
    baseline = results["no-obs baseline (dispatch removed)"]

    print(
        "\n=== Profiler dispatch overhead "
        "(%d paired plan executions) ===" % execs
    )
    rows = [
        [
            mode,
            f"{seconds * 1e3:.3f}",
            f"{100 * (seconds - baseline) / baseline:+.2f}%",
        ]
        for mode, seconds in results.items()
    ]
    print(
        ascii_table(["Mode", "Best exec (ms)", "vs baseline"], rows)
    )
    print(
        f"median paired ratios: disabled/baseline {ratio:.4f} "
        f"(max {max_ratio:.2f}), enabled/baseline {profiled_ratio:.4f}"
    )

    artifact = os.environ.get("REPRO_BENCH_OBS_JSON")
    if artifact:
        with open(artifact, "w") as handle:
            json.dump(
                {
                    "plan_executions": execs,
                    "best_exec_seconds": results,
                    "disabled_over_baseline": ratio,
                    "enabled_over_baseline": profiled_ratio,
                    "max_ratio": max_ratio,
                },
                handle,
                indent=2,
            )

    # The gate: the disabled dispatch must be indistinguishable from no
    # instrumentation at all (within the noise budget).
    assert ratio <= max_ratio, (
        f"disabled-profiler dispatch costs {100 * (ratio - 1):.1f}% "
        f"(budget {100 * (max_ratio - 1):.1f}%)"
    )
    # Profiling on may legitimately cost more, but must stay sane.
    assert results["profiling enabled"] < 2.0 * baseline


# -- scheduler queue-hook gate ------------------------------------------------


def _submit_prehook(self, demand_ms, callback, tag=None):
    """``ServerQueue.submit`` as it was before the QueueEvents hooks."""
    if demand_ms < 0:
        raise ValueError(f"negative work demand {demand_ms}")
    now = self.scheduler.now
    service = demand_ms / self.capacity
    if self.discipline == "fifo":
        start = max(now, self._free_at)
        finish = start + service
        self._free_at = finish
        job = _Job(
            seq=self._seq,
            queued_ms=now,
            started_ms=start,
            demand_ms=demand_ms,
            remaining_ms=service,
            callback=callback,
            depth_at_arrival=len(self._jobs) + 1,
            contended=start > now,
            finish_ms=finish,
            tag=tag,
        )
        self._seq += 1
        self._jobs.append(job)
        self.max_depth = max(self.max_depth, len(self._jobs))
        self.scheduler.call_at(finish, self._complete_fifo, job, job.token)
        return job
    self._advance_ps(now)
    job = _Job(
        seq=self._seq,
        queued_ms=now,
        started_ms=now,
        demand_ms=demand_ms,
        remaining_ms=service,
        callback=callback,
        depth_at_arrival=len(self._jobs) + 1,
        tag=tag,
    )
    self._seq += 1
    self._jobs.append(job)
    self.max_depth = max(self.max_depth, len(self._jobs))
    if len(self._jobs) > 1:
        for resident in self._jobs:
            resident.contended = True
    self._reschedule_ps()
    return job


def _cancel_prehook(self, job):
    """``ServerQueue.cancel`` without hooks or start re-arming."""
    if job.cancelled or job not in self._jobs:
        return 0.0
    now = self.scheduler.now
    job.cancelled = True
    service = job.demand_ms / self.capacity
    if self.discipline == "fifo":
        if job.started_ms <= now:
            consumed = min(service, now - job.started_ms)
        else:
            consumed = 0.0
        self._jobs.remove(job)
        self.busy_ms += consumed
        self.cancelled_jobs += 1
        cursor = now
        for other in self._jobs:
            if other.started_ms <= now:
                cursor = other.finish_ms
                continue
            start = max(cursor, other.queued_ms)
            finish = start + other.demand_ms / self.capacity
            cursor = finish
            if finish == other.finish_ms:
                continue
            other.started_ms = start
            other.finish_ms = finish
            other.contended = start > other.queued_ms
            other.token += 1
            self.scheduler.call_at(
                finish, self._complete_fifo, other, other.token
            )
        self._free_at = cursor
        return consumed
    self._advance_ps(now)
    consumed = max(0.0, service - job.remaining_ms)
    self._jobs.remove(job)
    self.busy_ms += consumed
    self.cancelled_jobs += 1
    self._reschedule_ps()
    return consumed


def _complete_fifo_prehook(self, job, token):
    if job.cancelled or token != job.token:
        return
    self._jobs.remove(job)
    self.served += 1
    self.busy_ms += job.remaining_ms
    job.callback(
        Completion(
            queue=self.name,
            queued_ms=job.queued_ms,
            started_ms=job.started_ms,
            finished_ms=job.finish_ms,
            demand_ms=job.demand_ms,
            service_ms=job.demand_ms / self.capacity,
            depth_at_arrival=job.depth_at_arrival,
            contended=job.contended,
        )
    )


def _depart_ps_prehook(self, epoch):
    if epoch != self._epoch:
        return
    now = self.scheduler.now
    self._advance_ps(now)
    head = min(self._jobs, key=lambda j: (j.remaining_ms, j.seq))
    self._jobs.remove(head)
    self.served += 1
    self.busy_ms += head.demand_ms / self.capacity
    self._reschedule_ps()
    head.callback(
        Completion(
            queue=self.name,
            queued_ms=head.queued_ms,
            started_ms=head.started_ms,
            finished_ms=now,
            demand_ms=head.demand_ms,
            service_ms=head.demand_ms / self.capacity,
            depth_at_arrival=head.depth_at_arrival,
            contended=head.contended,
        )
    )


@contextmanager
def _hooks_patched_out():
    """Replace every hook-bearing ServerQueue method with its pre-hook
    shape — no ``events`` identity checks, no deferred start
    notifications — i.e. the true no-obs baseline for the queue gate."""
    originals = {
        "submit": ServerQueue.submit,
        "cancel": ServerQueue.cancel,
        "_complete_fifo": ServerQueue._complete_fifo,
        "_depart_ps": ServerQueue._depart_ps,
    }
    ServerQueue.submit = _submit_prehook
    ServerQueue.cancel = _cancel_prehook
    ServerQueue._complete_fifo = _complete_fifo_prehook
    ServerQueue._depart_ps = _depart_ps_prehook
    try:
        yield
    finally:
        for name, method in originals.items():
            setattr(ServerQueue, name, method)


class _CountingEvents(QueueEvents):
    """Cheapest possible live observer: one counter bump per hook."""

    def __init__(self):
        self.enqueued = 0
        self.started = 0
        self.completed = 0
        self.cancelled = 0

    def on_enqueue(self, queue, job, t_ms):
        self.enqueued += 1

    def on_start(self, queue, job, t_ms):
        self.started += 1

    def on_complete(self, queue, job, completion):
        self.completed += 1

    def on_cancel(self, queue, job, t_ms, consumed_ms):
        self.cancelled += 1


#: Jobs per discipline per timed drive.  Arrivals outpace service 2:1 so
#: queues stay deep (FIFO restacks walk real backlogs) and every tenth
#: job is cancelled mid-flight, covering all four hook sites.
_HOOK_JOBS = 250


def _drive_queues(events=None):
    for discipline in ("fifo", "ps"):
        sched = EventScheduler()
        queue = ServerQueue(
            "S1", sched, capacity=1.0, discipline=discipline
        )
        if events is not None:
            queue.events = events
        done = []
        handles = []
        for i in range(_HOOK_JOBS):
            sched.call_at(
                i * 2.0,
                lambda i=i: handles.append(
                    queue.submit(3.0 + (i % 5), done.append)
                ),
            )
            if i % 10 == 5:
                sched.call_at(
                    i * 2.0 + 1.0, lambda i=i: queue.cancel(handles[i])
                )
        sched.run()


def _measure_sched_hooks():
    reps = int(os.environ.get("REPRO_BENCH_OBS_REPS", "5"))
    execs = int(os.environ.get("REPRO_BENCH_OBS_EXECS", "10"))

    def timed_drive(events=None) -> float:
        start = time.perf_counter()
        _drive_queues(events)
        return time.perf_counter() - start

    counting = _CountingEvents()
    for _ in range(3):
        timed_drive()  # warm caches before the first timed pair
    raw = []
    disabled = []
    enabled = []
    # Same back-to-back pairing as the dispatch gate — machine drift
    # cancels inside each pair — but with the within-pair order
    # alternated: at ~20 ms per drive the second leg of a pair runs
    # measurably warmer/colder than the first, and alternating cancels
    # that position bias in the median ratio too.
    for pair in range(execs * reps):
        if pair % 2 == 0:
            with _hooks_patched_out():
                raw.append(timed_drive())
            disabled.append(timed_drive())
        else:
            disabled.append(timed_drive())
            with _hooks_patched_out():
                raw.append(timed_drive())
        enabled.append(timed_drive(counting))
    return {
        "pre-hook baseline (hooks removed)": raw,
        "hooks present, null observer (default)": disabled,
        "hooks live (counting observer)": enabled,
    }, execs * reps, counting


def test_sched_hook_overhead(benchmark):
    samples, execs, counting = benchmark.pedantic(
        _measure_sched_hooks, rounds=1, iterations=1
    )

    raw = samples["pre-hook baseline (hooks removed)"]
    max_ratio = float(os.environ.get("REPRO_BENCH_OBS_MAX", "1.03"))
    ratio = _median(
        d / r
        for r, d in zip(
            raw, samples["hooks present, null observer (default)"]
        )
    )
    live_ratio = _median(
        e / r
        for r, e in zip(raw, samples["hooks live (counting observer)"])
    )
    results = {mode: min(times) for mode, times in samples.items()}
    baseline = results["pre-hook baseline (hooks removed)"]

    print(
        "\n=== Scheduler queue-hook overhead "
        "(%d paired fifo+ps drives, %d jobs each) ==="
        % (execs, 2 * _HOOK_JOBS)
    )
    rows = [
        [
            mode,
            f"{seconds * 1e3:.3f}",
            f"{100 * (seconds - baseline) / baseline:+.2f}%",
        ]
        for mode, seconds in results.items()
    ]
    print(ascii_table(["Mode", "Best drive (ms)", "vs baseline"], rows))
    print(
        f"median paired ratios: disabled/baseline {ratio:.4f} "
        f"(max {max_ratio:.2f}), live/baseline {live_ratio:.4f}"
    )

    artifact = os.environ.get("REPRO_BENCH_SCHED_JSON")
    if artifact:
        with open(artifact, "w") as handle:
            json.dump(
                {
                    "paired_drives": execs,
                    "jobs_per_drive": 2 * _HOOK_JOBS,
                    "best_drive_seconds": results,
                    "disabled_over_baseline": ratio,
                    "live_over_baseline": live_ratio,
                    "max_ratio": max_ratio,
                },
                handle,
                indent=2,
            )

    # The live observer must actually have seen every lifecycle event
    # (across all its timed drives): every job enqueues and starts, and
    # each either completes or is cancelled.
    per_drive = 2 * _HOOK_JOBS
    drives = execs  # counting observer rides only the enabled drives
    assert counting.enqueued == per_drive * drives
    assert counting.completed + counting.cancelled == per_drive * drives
    assert counting.started > 0 and counting.cancelled > 0

    # The gate: hooks behind a null observer must be indistinguishable
    # from the pre-hook queue (within the noise budget).
    assert ratio <= max_ratio, (
        f"disabled queue hooks cost {100 * (ratio - 1):.1f}% "
        f"(budget {100 * (max_ratio - 1):.1f}%)"
    )
    # A live observer pays per-event dispatch, but must stay sane.
    assert results["hooks live (counting observer)"] < 2.0 * baseline
