"""Observability overhead: the no-op sink must be free, tracing cheap.

The obs layer sits on the hot path of every federated query (integrator,
meta-wrapper, QCC, patroller all emit into it), so its disabled-by-
default null sink must cost nothing measurable.  This bench runs the
same workload three ways — null sink, metrics only, metrics + tracing —
and prints the per-query cost of each level of visibility.
"""

from __future__ import annotations

import time

import repro.obs as obs
from repro.harness import ascii_table, build_federation
from repro.workload import BENCH_SCALE, build_workload

QUERIES = 40


def _run_workload(databases) -> float:
    deployment = build_federation(
        scale=BENCH_SCALE, prebuilt_databases=databases
    )
    workload = build_workload(instances_per_type=max(1, QUERIES // 4), seed=7)
    start = time.perf_counter()
    for instance in workload[:QUERIES]:
        deployment.integrator.submit(instance.sql, label=instance.label)
    return time.perf_counter() - start


def _measure(databases):
    results = {}
    obs.disable()
    results["null sink (default)"] = _run_workload(databases)
    try:
        obs.configure(metrics=True, tracing=False, log_level=None)
        results["metrics only"] = _run_workload(databases)
        obs.configure(metrics=True, tracing=True, log_level=None)
        results["metrics + tracing"] = _run_workload(databases)
        traced = obs.get_obs().tracer.last()
    finally:
        obs.disable()
    return results, traced


def test_obs_overhead(benchmark, bench_databases):
    results, traced = benchmark.pedantic(
        _measure, args=(bench_databases,), rounds=1, iterations=1
    )

    baseline = results["null sink (default)"]
    print("\n=== Observability overhead (%d-query workload) ===" % QUERIES)
    rows = [
        [
            mode,
            f"{seconds * 1e3:.1f}",
            f"{seconds / QUERIES * 1e6:.0f}",
            f"{100 * (seconds - baseline) / baseline:+.1f}%",
        ]
        for mode, seconds in results.items()
    ]
    print(
        ascii_table(
            ["Sink", "Workload (ms)", "Per query (µs)", "vs null"], rows
        )
    )

    # The fully-enabled run must actually have produced a trace...
    assert traced is not None
    assert traced.find("dispatch")
    # ...and even full tracing must stay within 2x of the null sink (the
    # real expectation is a few percent; 2x only guards against the
    # instrumentation accidentally becoming the workload).
    assert results["metrics + tracing"] < 2.0 * baseline
