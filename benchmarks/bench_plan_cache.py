"""Compile-path speedup from the epoch-invalidated plan cache.

The paper's workload resubmits the same query instances phase after
phase, so between calibration cycles the integrator recompiles
identical (sql, exclusions, tolerance) triples against an unchanged
cost surface.  This bench measures the compile path with the cache on
(warm: every lookup hits) against the same deployment with the cache
off, over the standard mixed QT1-QT4 workload.

Asserts the cached compile loop is at least 2x faster — in practice a
dict lookup vs a full decompose + per-fragment explain + global plan
enumeration is orders of magnitude apart, so 2x leaves headroom for
noisy CI machines.
"""

from __future__ import annotations

import os
import time

from repro.harness import build_federation
from repro.workload import BENCH_SCALE

#: Passes over the workload per timing sample; CI shrinks via env.
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "20"))


def _compile_loop(integrator, sqls, rounds: int) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        for sql in sqls:
            integrator.compile(sql)
    return time.perf_counter() - start


def test_plan_cache_compile_speedup(
    benchmark, bench_databases, bench_workload
):
    cached = build_federation(
        scale=BENCH_SCALE, prebuilt_databases=bench_databases
    )
    uncached = build_federation(
        scale=BENCH_SCALE,
        prebuilt_databases=bench_databases,
        enable_plan_cache=False,
    )
    assert cached.integrator.plan_cache is not None
    assert uncached.integrator.plan_cache is None

    sqls = [instance.sql for instance in bench_workload]
    # Prime: the first pass populates the cache (all misses).
    _compile_loop(cached.integrator, sqls, 1)

    cached_s = benchmark.pedantic(
        _compile_loop,
        args=(cached.integrator, sqls, ROUNDS),
        rounds=1,
        iterations=1,
    )
    uncached_s = _compile_loop(uncached.integrator, sqls, ROUNDS)
    speedup = uncached_s / cached_s if cached_s > 0 else float("inf")

    stats = cached.integrator.plan_cache.stats()
    benchmark.extra_info["cached_s"] = cached_s
    benchmark.extra_info["uncached_s"] = uncached_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["plan_cache"] = stats

    print("\n=== Plan cache compile-path benchmark ===")
    print(f"workload: {len(sqls)} queries x {ROUNDS} rounds")
    print(f"cache on:  {cached_s * 1000:9.1f} ms")
    print(f"cache off: {uncached_s * 1000:9.1f} ms")
    print(f"speedup:   {speedup:9.1f}x")
    print("cache stats:")
    for key, value in stats.items():
        formatted = f"{value:.3f}" if isinstance(value, float) else value
        print(f"  {key}: {formatted}")

    # Warm lookups only: every timed compile must have hit.
    assert stats["misses"] == len(sqls)
    assert stats["hits"] == len(sqls) * ROUNDS
    assert speedup >= 2.0, (cached_s, uncached_s)
