"""Shared fixtures.

Database construction dominates test time, so the expensive artifacts
(populated sample databases) are session-scoped and shared; anything
mutable (deployments, QCC state) is function-scoped and rebuilt from the
shared data.
"""

from __future__ import annotations

import pytest

from repro.harness import DEFAULT_SERVER_SPECS, build_databases
from repro.sqlengine import (
    ColumnType,
    Database,
    ForeignKey,
    Serial,
    TableSpec,
    UniformFloat,
    UniformInt,
    populate,
)
from repro.workload import TEST_SCALE


@pytest.fixture(scope="session")
def sample_databases():
    """Fully loaded per-server sample databases at test scale."""
    return build_databases(DEFAULT_SERVER_SPECS, TEST_SCALE, seed=7)


@pytest.fixture(scope="session")
def tiny_specs():
    """A minimal two-table schema used across engine tests."""
    return (
        TableSpec(
            "dept",
            (
                ("deptno", ColumnType.INT, Serial()),
                ("budget", ColumnType.INT, UniformInt(10, 99)),
            ),
            row_count=20,
            indexes=("deptno",),
        ),
        TableSpec(
            "emp",
            (
                ("empno", ColumnType.INT, Serial()),
                ("deptno", ColumnType.INT, ForeignKey(20)),
                ("salary", ColumnType.FLOAT, UniformFloat(1000.0, 9000.0)),
            ),
            row_count=300,
        ),
    )


@pytest.fixture()
def tiny_db(tiny_specs):
    """A fresh dept/emp database (mutable per test)."""
    db = Database("tiny")
    populate(db, tiny_specs, seed=42)
    return db
