"""Unit tests for the relational wrapper and table renaming."""

import pytest

from repro.sim import MutableLoad, RemoteServer, ServerUnavailable, OutageSchedule
from repro.sqlengine import Database, parse, populate
from repro.wrappers import RelationalWrapper, rename_tables


@pytest.fixture()
def wrapper(tiny_specs):
    db = Database("srv")
    populate(db, tiny_specs, seed=42)
    return RelationalWrapper(RemoteServer("srv", db, load=MutableLoad()))


class TestRenameTables:
    def test_rename_adds_alias_preserving_binding(self):
        statement = parse("SELECT emp.salary FROM emp WHERE emp.salary > 1")
        renamed = rename_tables(statement, {"emp": "emp_v2"})
        assert renamed.tables[0].name == "emp_v2"
        assert renamed.tables[0].binding == "emp"
        assert "emp_v2 AS emp" in renamed.sql()

    def test_existing_alias_kept(self):
        statement = parse("SELECT e.salary FROM emp e")
        renamed = rename_tables(statement, {"emp": "emp_v2"})
        assert renamed.tables[0].binding == "e"

    def test_join_tables_renamed(self):
        statement = parse(
            "SELECT e.empno FROM emp e JOIN dept d ON e.deptno = d.deptno"
        )
        renamed = rename_tables(statement, {"dept": "dept_x"})
        assert renamed.joins[0].table.name == "dept_x"
        assert renamed.joins[0].table.binding == "d"

    def test_identity_mapping_no_change(self):
        statement = parse("SELECT * FROM emp")
        renamed = rename_tables(statement, {"emp": "emp"})
        assert renamed.sql() == statement.sql()


class TestWrapper:
    def test_plans_return_candidates(self, wrapper):
        plans = wrapper.plans("SELECT COUNT(*) FROM emp", 0.0)
        assert plans
        assert plans[0].cost.total > 0

    def test_execute_returns_remote_execution(self, wrapper):
        plan = wrapper.plans("SELECT COUNT(*) FROM emp", 0.0)[0].plan
        execution = wrapper.execute(plan, 0.0)
        assert execution.rows == [(300,)]
        assert execution.observed_ms > 0

    def test_translate_with_nickname_map(self, tiny_specs):
        db = Database("srv")
        populate(db, tiny_specs, seed=42)
        server = RemoteServer("srv", db)
        wrapper = RelationalWrapper(server, nickname_map={"people": "emp"})
        sql = wrapper.translate("SELECT COUNT(*) FROM people")
        assert "emp" in sql
        plans = wrapper.plans("SELECT COUNT(*) FROM people", 0.0)
        assert wrapper.execute(plans[0].plan, 0.0).rows == [(300,)]

    def test_ping(self, wrapper):
        assert wrapper.ping(0.0) > 0

    def test_probe_ratio(self, wrapper):
        estimated, observed = wrapper.probe_ratio(0.0)
        assert estimated > 0
        assert observed > estimated  # network on top of processing

    def test_unavailable_propagates(self, tiny_specs):
        db = Database("srv")
        populate(db, tiny_specs, seed=42)
        server = RemoteServer(
            "srv", db, availability=OutageSchedule([(0.0, 100.0)])
        )
        wrapper = RelationalWrapper(server)
        with pytest.raises(ServerUnavailable):
            wrapper.plans("SELECT COUNT(*) FROM emp", 50.0)

    def test_server_name(self, wrapper):
        assert wrapper.server_name == "srv"
        assert wrapper.source_type == "relational"
