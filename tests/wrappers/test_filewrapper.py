"""Unit tests for the file wrapper (cost-withholding source)."""

import pytest

from repro.sim import NetworkLink, OutageSchedule, ServerUnavailable
from repro.sqlengine import Column, ColumnType, Schema
from repro.wrappers import FileSource, FileWrapper, UNKNOWN_COST


@pytest.fixture()
def source():
    schema = Schema(
        (Column("id", ColumnType.INT), Column("tag", ColumnType.STR))
    )
    rows = [(i, f"tag{i % 3}") for i in range(100)]
    return FileSource(
        name="files1",
        table_name="events",
        schema=schema,
        rows=rows,
        link=NetworkLink(latency_ms=20.0, bandwidth_mbps=10.0),
    )


class TestFileWrapper:
    def test_plans_withhold_cost(self, source):
        wrapper = FileWrapper(source)
        plans = wrapper.plans("SELECT id FROM events WHERE id > 50", 0.0)
        assert len(plans) == 1
        assert plans[0].cost == UNKNOWN_COST
        assert not wrapper.provides_cost

    def test_execute_fetches_and_filters(self, source):
        wrapper = FileWrapper(source)
        plan = wrapper.plans("SELECT id FROM events WHERE id > 97", 0.0)[0].plan
        execution = wrapper.execute(plan, 0.0)
        assert sorted(r[0] for r in execution.rows) == [98, 99]

    def test_execution_time_includes_whole_file_transfer(self, source):
        wrapper = FileWrapper(source)
        plan = wrapper.plans("SELECT id FROM events WHERE id > 97", 0.0)[0].plan
        execution = wrapper.execute(plan, 0.0)
        transfer = source.link.transfer_ms(source.file_bytes, 0.0)
        assert execution.network_ms >= transfer

    def test_unavailable(self):
        schema = Schema((Column("id", ColumnType.INT),))
        source = FileSource(
            "f", "t", schema, [(1,)],
            availability=OutageSchedule([(0.0, 100.0)]),
        )
        wrapper = FileWrapper(source)
        with pytest.raises(ServerUnavailable):
            wrapper.plans("SELECT id FROM t", 50.0)
        with pytest.raises(ServerUnavailable):
            wrapper.ping(50.0)

    def test_probe_ratio_is_none(self, source):
        assert FileWrapper(source).probe_ratio(0.0) is None

    def test_ping_returns_rtt(self, source):
        assert FileWrapper(source).ping(0.0) == pytest.approx(40.0)
