"""Unit tests for the meta-wrapper: MW's records and QCC hooks."""

import pytest

from repro.fed import decompose
from repro.harness import build_federation
from repro.wrappers import DEFAULT_UNKNOWN_ESTIMATE, MetaWrapper
from repro.workload import TEST_SCALE


class RecordingQcc:
    """Duck-typed QCC stub that logs every MW interaction."""

    def __init__(self, factor=2.0, available=None):
        self.factor = factor
        self.available = available or {}
        self.calls = []

    def bind_meta_wrapper(self, mw):
        self.calls.append(("bind", mw))

    def is_available(self, server, t_ms):
        return self.available.get(server, True)

    def calibrate(self, server, fragment_signature, cost):
        self.calls.append(("calibrate", server))
        return cost.scaled(self.factor)

    def record_compile(self, server, fragment_signature, option):
        self.calls.append(("compile", server))

    def record_execution(self, **kwargs):
        self.calls.append(("execute", kwargs["server"], kwargs["observed_ms"]))

    def record_error(self, server, t_ms):
        self.calls.append(("error", server))

    def substitute(self, option, siblings, t_ms):
        self.calls.append(("substitute", option.server, len(siblings)))
        return option


@pytest.fixture()
def deployment(sample_databases):
    return build_federation(
        scale=TEST_SCALE, with_qcc=False, prebuilt_databases=sample_databases
    )


def _fragment(deployment, sql="SELECT COUNT(*) FROM customer"):
    decomposed = decompose(sql, deployment.registry)
    return decomposed.fragments[0]


class TestCompileFragment:
    def test_options_cover_candidate_servers(self, deployment):
        fragment = _fragment(deployment)
        options = deployment.meta_wrapper.compile_fragment(fragment, 0.0)
        assert {o.server for o in options} == {"S1", "S2", "S3"}

    def test_compile_log_populated(self, deployment):
        fragment = _fragment(deployment)
        deployment.meta_wrapper.compile_fragment(fragment, 5.0)
        entries = deployment.meta_wrapper.compile_log
        assert entries
        entry = entries[0]
        assert entry.t_ms == 5.0
        assert entry.fragment_id == fragment.fragment_id
        assert entry.estimated.total > 0

    def test_without_qcc_calibrated_equals_estimated(self, deployment):
        fragment = _fragment(deployment)
        options = deployment.meta_wrapper.compile_fragment(fragment, 0.0)
        for option in options:
            assert option.calibrated.total == option.estimated.total

    def test_qcc_calibration_applied(self, deployment):
        qcc = RecordingQcc(factor=3.0)
        deployment.meta_wrapper.attach_qcc(qcc)
        fragment = _fragment(deployment)
        options = deployment.meta_wrapper.compile_fragment(fragment, 0.0)
        for option in options:
            assert option.calibrated.total == pytest.approx(
                option.estimated.total * 3.0
            )
        assert ("compile", "S1") in qcc.calls

    def test_unavailable_server_skipped(self, deployment):
        qcc = RecordingQcc(available={"S3": False})
        deployment.meta_wrapper.attach_qcc(qcc)
        fragment = _fragment(deployment)
        options = deployment.meta_wrapper.compile_fragment(fragment, 0.0)
        assert {o.server for o in options} == {"S1", "S2"}

    def test_sibling_options_stored(self, deployment):
        fragment = _fragment(deployment)
        options = deployment.meta_wrapper.compile_fragment(fragment, 0.0)
        siblings = deployment.meta_wrapper.sibling_options(fragment.signature)
        assert len(siblings) == len(options)


class TestExecuteOption:
    def test_runtime_log_and_qcc_report(self, deployment):
        qcc = RecordingQcc(factor=1.0)
        deployment.meta_wrapper.attach_qcc(qcc)
        fragment = _fragment(deployment)
        options = deployment.meta_wrapper.compile_fragment(fragment, 0.0)
        option, result = deployment.meta_wrapper.execute_option(options[0], 0.0)
        assert result.observed_ms > 0
        log = deployment.meta_wrapper.runtime_log
        assert log and log[0].observed_ms == result.observed_ms
        assert any(c[0] == "execute" for c in qcc.calls)
        assert any(c[0] == "substitute" for c in qcc.calls)

    def test_substitution_can_be_disabled(self, deployment):
        qcc = RecordingQcc()
        deployment.meta_wrapper.attach_qcc(qcc)
        fragment = _fragment(deployment)
        options = deployment.meta_wrapper.compile_fragment(fragment, 0.0)
        deployment.meta_wrapper.execute_option(
            options[0], 0.0, allow_substitution=False
        )
        assert not any(c[0] == "substitute" for c in qcc.calls)


class TestUnknownCostSubstitution:
    def test_default_estimate_for_file_wrapper(self, deployment):
        from repro.sqlengine import Column, ColumnType, Schema
        from repro.wrappers import FileSource, FileWrapper
        from repro.fed import NicknameRegistry

        schema = Schema((Column("id", ColumnType.INT),))
        source = FileSource("files1", "events", schema, [(1,), (2,)])
        registry = NicknameRegistry()
        registry.register(
            "events",
            "files1",
            table_def=source.database.catalog.lookup("events"),
        )
        mw = MetaWrapper({"files1": FileWrapper(source)})
        decomposed = decompose("SELECT id FROM events", registry)
        options = mw.compile_fragment(decomposed.fragments[0], 0.0)
        assert len(options) == 1
        assert options[0].estimated == DEFAULT_UNKNOWN_ESTIMATE

    def test_zero_cost_estimate_is_not_unknown(self, deployment):
        """Regression: only ``cost is None`` means "the wrapper withheld
        its estimate".  A zero-valued PlanCost — what an empty table
        legitimately estimates to — must pass through untouched instead
        of being inflated to the 100ms unknown default."""
        from repro.sqlengine import PlanCost
        from repro.fed import NicknameRegistry

        zero = PlanCost(
            first_tuple=0.0, total=0.0, rows=0.0, width_bytes=0.0
        )
        relational = deployment.meta_wrapper.wrappers["S1"]
        reference = relational.plans("SELECT COUNT(*) FROM customer", 0.0)[0]

        class ZeroCostWrapper:
            source_type = "relational"
            server_name = "Z1"

            def plans(self, fragment_sql, t_ms):
                from repro.sqlengine import PlanCandidate

                return [PlanCandidate(plan=reference.plan, cost=zero)]

        registry = NicknameRegistry()
        registry.register(
            "customer",
            "Z1",
            table_def=deployment.servers["S1"].database.catalog.lookup(
                "customer"
            ),
        )
        mw = MetaWrapper({"Z1": ZeroCostWrapper()})
        decomposed = decompose("SELECT COUNT(*) FROM customer", registry)
        options = mw.compile_fragment(decomposed.fragments[0], 0.0)
        assert len(options) == 1
        assert options[0].estimated == zero
        assert options[0].estimated != DEFAULT_UNKNOWN_ESTIMATE

    def test_empty_table_estimate_survives(self):
        """An empty relational table estimates to a tiny (near-zero)
        cost with ``rows == 0``; the old zero-heuristic would have been
        one startup-cost tweak away from misreading it as unknown."""
        from repro.fed import NicknameRegistry
        from repro.sim.server import RemoteServer
        from repro.sqlengine import (
            ColumnType,
            Database,
            Serial,
            TableSpec,
            populate,
        )
        from repro.wrappers import RelationalWrapper

        spec = TableSpec(
            "events",
            (("id", ColumnType.INT, Serial()),),
            row_count=0,
        )
        database = Database()
        populate(database, (spec,), seed=1)
        server = RemoteServer("E1", database)
        registry = NicknameRegistry()
        registry.register(
            "events", "E1", table_def=database.catalog.lookup("events")
        )
        mw = MetaWrapper({"E1": RelationalWrapper(server)})
        decomposed = decompose("SELECT id FROM events", registry)
        options = mw.compile_fragment(decomposed.fragments[0], 0.0)
        assert len(options) == 1
        assert options[0].estimated.rows == 0.0
        assert options[0].estimated != DEFAULT_UNKNOWN_ESTIMATE
        assert options[0].estimated.total < 1.0


class TestProbes:
    def test_probe_unknown_server(self, deployment):
        from repro.sim import ServerUnavailable

        with pytest.raises(ServerUnavailable):
            deployment.meta_wrapper.probe("S9", 0.0)

    def test_probe_and_ratio(self, deployment):
        rtt = deployment.meta_wrapper.probe("S1", 0.0)
        assert rtt > 0
        estimated, observed = deployment.meta_wrapper.probe_ratio("S1", 0.0)
        assert observed > estimated > 0

    def test_server_names(self, deployment):
        assert deployment.meta_wrapper.server_names() == ["S1", "S2", "S3"]
