"""ServerQueue lifecycle hooks: emission order, token fencing, and the
zero-extra-events guarantee of the disabled (null observer) path."""

from repro.sim.sched import (
    EventScheduler,
    QueueEvents,
    ServerQueue,
)


class Recorder(QueueEvents):
    """Collects every hook call with its virtual timestamp."""

    def __init__(self):
        self.calls = []

    def on_enqueue(self, queue, job, t_ms):
        self.calls.append(("enqueue", queue.name, job.tag, t_ms))

    def on_start(self, queue, job, t_ms):
        self.calls.append(("start", queue.name, job.tag, t_ms))

    def on_complete(self, queue, job, completion):
        self.calls.append(("complete", queue.name, job.tag, completion))

    def on_cancel(self, queue, job, t_ms, consumed_ms):
        self.calls.append(("cancel", queue.name, job.tag, t_ms, consumed_ms))

    def of(self, kind):
        return [c for c in self.calls if c[0] == kind]


def _queue(discipline, events=None):
    sched = EventScheduler()
    queue = ServerQueue("S1", sched, capacity=1.0, discipline=discipline)
    if events is not None:
        queue.events = events
    return sched, queue


class TestFifoHooks:
    def test_idle_submission_starts_immediately(self):
        rec = Recorder()
        sched, queue = _queue("fifo", rec)
        done = []
        queue.submit(10.0, done.append, tag="j1")
        # Enqueue and start are both emitted synchronously at submit
        # time — an idle server begins service at the arrival instant.
        assert [c[0] for c in rec.calls] == ["enqueue", "start"]
        assert rec.calls[0][3] == 0.0 and rec.calls[1][3] == 0.0
        sched.run()
        assert [c[0] for c in rec.calls] == ["enqueue", "start", "complete"]
        completion = rec.of("complete")[0][3]
        assert completion.wait_ms == 0.0
        assert completion.service_ms == 10.0

    def test_queued_submission_defers_start_to_head_departure(self):
        rec = Recorder()
        sched, queue = _queue("fifo", rec)
        done = []
        queue.submit(10.0, done.append, tag="j1")
        queue.submit(5.0, done.append, tag="j2")
        # j2 is behind j1: only its enqueue is emitted at submit time.
        assert [c[0] for c in rec.calls] == ["enqueue", "start", "enqueue"]
        sched.run()
        # At t=10 both j1's completion and j2's deferred start fire; the
        # completion event was armed first, so it lands first.
        kinds = [(c[0], c[2]) for c in rec.calls]
        assert kinds == [
            ("enqueue", "j1"),
            ("start", "j1"),
            ("enqueue", "j2"),
            ("complete", "j1"),
            ("start", "j2"),
            ("complete", "j2"),
        ]
        assert rec.of("start")[1][3] == 10.0
        j2 = rec.of("complete")[1][3]
        assert j2.wait_ms + j2.service_ms == j2.sojourn_ms

    def test_cancel_of_queued_job_silences_its_start(self):
        rec = Recorder()
        sched, queue = _queue("fifo", rec)
        done = []
        queue.submit(10.0, done.append, tag="head")
        victim = queue.submit(5.0, done.append, tag="victim")
        queue.submit(5.0, done.append, tag="tail")
        sched.call_at(2.0, queue.cancel, victim)
        sched.run()
        # The victim never starts: its deferred notification is fenced
        # by job.cancelled.  The tail restacks into the freed slot and
        # still gets exactly one start.
        assert [c[2] for c in rec.of("start")] == ["head", "tail"]
        assert [c[2] for c in rec.of("cancel")] == ["victim"]
        assert rec.of("cancel")[0][4] == 0.0  # never reached the server
        assert [c[2] for c in rec.of("complete")] == ["head", "tail"]
        # Restacked tail: starts at the head's departure, not behind the
        # cancelled victim.
        assert rec.of("start")[1][3] == 10.0

    def test_cancel_in_service_reports_consumed_ms(self):
        rec = Recorder()
        sched, queue = _queue("fifo", rec)
        running = queue.submit(10.0, lambda c: None, tag="running")
        sched.call_at(4.0, queue.cancel, running)
        sched.run()
        cancel = rec.of("cancel")[0]
        assert cancel[3] == 4.0
        assert cancel[4] == 4.0  # four ms of dedicated service burned
        assert rec.of("complete") == []

    def test_restack_reemits_start_with_fresh_token(self):
        rec = Recorder()
        sched, queue = _queue("fifo", rec)
        done = []
        queue.submit(10.0, done.append, tag="head")
        victim = queue.submit(10.0, done.append, tag="victim")
        tail = queue.submit(5.0, done.append, tag="tail")
        # Cancel the victim while the head is mid-service, then let the
        # tail run to completion in its restacked slot.
        sched.call_at(3.0, queue.cancel, victim)
        sched.run()
        starts = [c for c in rec.of("start") if c[2] == "tail"]
        assert len(starts) == 1, "stale pre-restack start must be fenced"
        assert starts[0][3] == 10.0
        completion = [c for c in rec.of("complete") if c[2] == "tail"][0][3]
        assert completion.finished_ms == 15.0
        assert completion.wait_ms + completion.service_ms == (
            completion.sojourn_ms
        )


class TestPsHooks:
    def test_enqueue_and_start_are_simultaneous(self):
        rec = Recorder()
        sched, queue = _queue("ps", rec)
        done = []
        sched.call_at(0.0, queue.submit, 10.0, done.append, "a")
        sched.call_at(2.0, queue.submit, 10.0, done.append, "b")
        sched.run()
        # PS shares capacity from the first instant: start == enqueue.
        for kind in ("enqueue", "start"):
            assert [(c[2], c[3]) for c in rec.of(kind)] == [
                ("a", 0.0),
                ("b", 2.0),
            ]
        for call in rec.of("complete"):
            completion = call[3]
            assert completion.wait_ms + completion.service_ms == (
                completion.sojourn_ms
            )

    def test_cancel_reports_shared_service_consumed(self):
        rec = Recorder()
        sched, queue = _queue("ps", rec)
        victim = queue.submit(10.0, lambda c: None, tag="victim")
        sched.call_at(0.0, queue.submit, 10.0, lambda c: None, "other")
        sched.call_at(6.0, queue.cancel, victim)
        sched.run()
        cancel = rec.of("cancel")[0]
        # Two residents sharing for 6ms: the victim consumed 3ms.
        assert cancel[3] == 6.0
        assert cancel[4] == 3.0


class TestDisabledPath:
    def test_null_observer_arms_no_extra_scheduler_events(self):
        """The zero-overhead contract is structural: with the null
        observer installed (the default) a FIFO queue arms exactly one
        scheduler event per job — the completion.  A live observer adds
        one deferred start notification per job that arrives to a busy
        server, and nothing else."""

        def run(events):
            sched = EventScheduler()
            armed = 0
            original = sched.call_at

            def counting(t_ms, fn, *args):
                nonlocal armed
                armed += 1
                return original(t_ms, fn, *args)

            sched.call_at = counting
            queue = ServerQueue("S1", sched, capacity=1.0, discipline="fifo")
            if events is not None:
                queue.events = events
            done = []
            for _ in range(5):
                queue.submit(10.0, done.append)
            sched.run()
            assert len(done) == 5
            return armed

        assert run(None) == 5
        # Four of the five jobs queue behind the head: one deferred
        # start notification each.
        assert run(Recorder()) == 9

    def test_tag_defaults_to_none_and_passes_through(self):
        rec = Recorder()
        sched, queue = _queue("fifo", rec)
        tag = object()
        queue.submit(1.0, lambda c: None, tag=tag)
        queue.submit(1.0, lambda c: None)
        sched.run()
        assert rec.of("enqueue")[0][2] is tag
        assert rec.of("enqueue")[1][2] is None
