"""Unit tests for DML at servers and update-storm generation."""

import pytest

from repro.sim import (
    InducedLoad,
    MutableLoad,
    RemoteServer,
    ServerUnavailable,
    OutageSchedule,
    UpdateStormDriver,
)
from repro.sqlengine import Database, populate


@pytest.fixture()
def server(tiny_specs):
    db = Database("srv")
    populate(db, tiny_specs, seed=42)
    return RemoteServer("srv", db, load=MutableLoad())


class TestServerDml:
    def test_execute_dml(self, server):
        execution = server.execute_dml(
            "UPDATE emp SET salary = salary + 1 WHERE deptno = 3", 0.0
        )
        assert execution.observed_ms > 0
        assert execution.rows == []
        assert execution.schema is None

    def test_dml_respects_availability(self, tiny_specs):
        db = Database("d")
        populate(db, tiny_specs, seed=42)
        server = RemoteServer(
            "d", db, availability=OutageSchedule([(0.0, 100.0)])
        )
        with pytest.raises(ServerUnavailable):
            server.execute_dml("DELETE FROM dept", 50.0)

    def test_dml_heats_induced_load(self, tiny_specs):
        db = Database("d")
        populate(db, tiny_specs, seed=42)
        load = InducedLoad(gain=0.05, decay_ms=100_000.0)
        server = RemoteServer("d", db, load=load)
        before = load.level(0.0)
        for _ in range(5):
            server.execute_dml("UPDATE emp SET salary = salary + 1", 0.0)
        assert load.level(0.0) > before

    def test_dml_slows_concurrent_queries(self, tiny_specs):
        db = Database("d")
        populate(db, tiny_specs, seed=42)
        load = InducedLoad(gain=0.05, decay_ms=100_000.0)
        server = RemoteServer("d", db, load=load)
        plan = server.explain("SELECT COUNT(*) FROM emp", 0.0)[0].plan
        cold = server.execute_plan(plan, 0.0).processing_ms
        for _ in range(10):
            server.execute_dml("UPDATE emp SET salary = salary + 1", 0.0)
        hot = server.execute_plan(plan, 0.0).processing_ms
        assert hot > cold


class TestUpdateStormDriver:
    def test_defaults_to_largest_table(self, server):
        driver = UpdateStormDriver(server)
        assert driver.table.name == "emp"  # 300 rows vs dept's 20

    def test_burst_executes_statements(self, server):
        driver = UpdateStormDriver(server)
        report = driver.burst(0.0, statements=4)
        assert report.statements == 4
        assert report.total_observed_ms > 0
        assert len(report.executions) == 4

    def test_burst_actually_mutates(self, server):
        before = server.database.run("SELECT SUM(salary) FROM emp").rows[0][0]
        UpdateStormDriver(server).sustained(0.0, 1_000.0, statements_per_burst=5)
        after = server.database.run("SELECT SUM(salary) FROM emp").rows[0][0]
        assert after != before

    def test_deterministic(self, tiny_specs):
        def totals(seed):
            db = Database("d")
            populate(db, tiny_specs, seed=42)
            srv = RemoteServer("d", db)
            driver = UpdateStormDriver(srv, seed=seed)
            driver.burst(0.0, statements=5)
            return srv.database.run("SELECT SUM(salary) FROM emp").rows[0][0]

        assert totals(1) == totals(1)
        assert totals(1) != totals(2)

    def test_sustained_respects_duration(self, server):
        driver = UpdateStormDriver(server)
        reports = driver.sustained(
            0.0, 1_000.0, statements_per_burst=1, burst_interval_ms=250.0
        )
        assert len(reports) == 4

    def test_explicit_table(self, server):
        driver = UpdateStormDriver(server, table="dept")
        assert driver.table.name == "dept"
        driver.burst(0.0, statements=2)

    def test_storm_makes_estimates_stale(self, server):
        """Heavy updates without RUNSTATS leave the optimizer's
        statistics describing data that no longer exists — one of the
        estimate-vs-reality gaps QCC absorbs."""
        stats_before = server.database.catalog.lookup("emp").stats.row_count
        server.execute_dml("DELETE FROM emp WHERE empno <= 150", 0.0)
        stats_after = server.database.catalog.lookup("emp").stats.row_count
        assert stats_before == stats_after  # catalog is stale
        assert len(server.database.storage.table("emp")) == 150
