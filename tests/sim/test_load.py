"""Unit tests for load schedules and contention profiles."""

import pytest

from repro.sim import (
    ConstantLoad,
    ContentionProfile,
    MutableLoad,
    StepSchedule,
    UpdateStorm,
)


class TestConstantLoad:
    def test_level(self):
        assert ConstantLoad(0.5).level(12345.0) == 0.5

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ConstantLoad(1.0)
        with pytest.raises(ValueError):
            ConstantLoad(-0.1)


class TestStepSchedule:
    def test_steps(self):
        schedule = StepSchedule([(100.0, 0.5), (200.0, 0.9)], initial=0.1)
        assert schedule.level(50.0) == 0.1
        assert schedule.level(100.0) == 0.5
        assert schedule.level(150.0) == 0.5
        assert schedule.level(500.0) == 0.9

    def test_unsorted_input_is_sorted(self):
        schedule = StepSchedule([(200.0, 0.9), (100.0, 0.5)])
        assert schedule.level(150.0) == 0.5

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            StepSchedule([(0.0, 1.5)])


class TestMutableLoad:
    def test_set(self):
        load = MutableLoad()
        assert load.level(0.0) == 0.0
        load.set(0.8)
        assert load.level(0.0) == 0.8

    def test_set_validates(self):
        with pytest.raises(ValueError):
            MutableLoad().set(1.0)


class TestUpdateStorm:
    def test_burst_window(self):
        storm = UpdateStorm(base=0.1, peak=0.8, start_ms=100.0, duration_ms=50.0)
        assert storm.level(0.0) == 0.1
        assert storm.level(120.0) == 0.8
        assert storm.level(200.0) == 0.1

    def test_periodic_bursts(self):
        storm = UpdateStorm(
            base=0.0, peak=0.9, start_ms=0.0, duration_ms=10.0, period_ms=100.0
        )
        assert storm.level(5.0) == 0.9
        assert storm.level(50.0) == 0.0
        assert storm.level(105.0) == 0.9
        assert storm.level(250.0) == 0.0

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            UpdateStorm(base=0.0, peak=1.2)


class TestContentionProfile:
    def test_no_load_no_slowdown(self):
        profile = ContentionProfile(0.9, 0.9)
        assert profile.cpu_multiplier(0.0) == 1.0
        assert profile.io_multiplier(0.0) == 1.0

    def test_multiplier_monotone_in_load(self):
        profile = ContentionProfile(0.9, 0.5)
        levels = [0.0, 0.2, 0.5, 0.8, 0.95]
        cpu = [profile.cpu_multiplier(lv) for lv in levels]
        assert cpu == sorted(cpu)
        assert cpu[-1] > cpu[0]

    def test_sensitivity_separates_resources(self):
        profile = ContentionProfile(cpu_sensitivity=0.95, io_sensitivity=0.3)
        assert profile.cpu_multiplier(0.85) > profile.io_multiplier(0.85)

    def test_multiplier_bounded(self):
        profile = ContentionProfile(1.0, 1.0)
        assert profile.cpu_multiplier(0.99) <= 20.0  # capped at 1/(1-0.95)

    def test_invalid_sensitivity(self):
        with pytest.raises(ValueError):
            ContentionProfile(cpu_sensitivity=1.5)
