"""The AST guard against implicit global-random use in the simulator."""

import pytest

from repro.chaos import (
    DeterminismError,
    forbid_global_random,
    global_random_uses,
)


def test_sim_and_fed_packages_are_clean():
    # The shipped simulator and federation layer must never consume
    # global random state; the chaos CLI refuses to run otherwise.
    forbid_global_random()


def test_default_scan_covers_fed_package(tmp_path, monkeypatch):
    """The no-argument guard must scan ``repro.fed`` too — admission
    control's arrival generators draw randomness there, and an implicit
    global draw would break every concurrent scenario's determinism."""
    import repro.fed

    offender = tmp_path / "arrivals.py"
    offender.write_text("import random\ngap = random.expovariate(1.0)\n")
    monkeypatch.setattr(repro.fed, "__file__", str(tmp_path / "__init__.py"))
    with pytest.raises(DeterminismError) as excinfo:
        forbid_global_random()
    assert "arrivals.py:2" in str(excinfo.value)


def test_flags_module_level_random_calls(tmp_path):
    offender = tmp_path / "offender.py"
    offender.write_text(
        "import random\n"
        "def jitter():\n"
        "    return random.random() * random.uniform(0, 5)\n"
        "def pick(items):\n"
        "    random.shuffle(items)\n"
        "    return random.choice(items)\n"
    )
    uses = global_random_uses(tmp_path)
    attrs = [use.rsplit("random.", 1)[1] for use in uses]
    assert sorted(attrs) == ["choice", "random", "shuffle", "uniform"]
    with pytest.raises(DeterminismError) as excinfo:
        forbid_global_random(tmp_path)
    assert "offender.py:3" in str(excinfo.value)
    assert "derive_rng" in str(excinfo.value)


def test_seeded_instances_are_allowed(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text(
        "import random\n"
        "def make(seed):\n"
        "    rng = random.Random(seed)\n"
        "    return rng.random()\n"
    )
    assert global_random_uses(tmp_path) == []
    forbid_global_random(tmp_path)


def test_bare_references_without_call_are_flagged(tmp_path):
    sneaky = tmp_path / "sneaky.py"
    sneaky.write_text(
        "import random\n"
        "draw = random.random\n"
    )
    uses = global_random_uses(tmp_path)
    assert len(uses) == 1 and uses[0].endswith("random.random")


def test_scans_single_file(tmp_path):
    target = tmp_path / "one.py"
    target.write_text("import random\nx = random.randint(0, 5)\n")
    assert len(global_random_uses(target)) == 1
