"""Unit tests for virtual time."""

import pytest

from repro.sim import PeriodicTimer, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(100.0).now == 100.0

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(5.0) == 5.0
        assert clock.advance(2.5) == 7.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0
        clock.advance_to(5.0)  # no-op backwards
        assert clock.now == 10.0


class TestPeriodicTimer:
    def test_not_due_before_period(self):
        timer = PeriodicTimer(100.0)
        assert not timer.due(50.0)
        assert timer.due(100.0)

    def test_fire_schedules_from_now(self):
        timer = PeriodicTimer(100.0)
        timer.fire(250.0)  # fired late
        assert not timer.due(300.0)
        assert timer.due(350.0)

    def test_reschedule(self):
        timer = PeriodicTimer(100.0)
        timer.reschedule(10.0, now_ms=0.0)
        assert timer.due(10.0)
        assert timer.period_ms == 10.0

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicTimer(0.0)
        timer = PeriodicTimer(5.0)
        with pytest.raises(ValueError):
            timer.reschedule(-1.0, 0.0)
