"""Unit tests for availability schedules and error injection."""

import pytest

from repro.sim import AlwaysUp, ErrorInjector, OutageSchedule, ServerUnavailable


class TestAlwaysUp:
    def test_always(self):
        assert AlwaysUp().is_up(0.0)
        assert AlwaysUp().is_up(1e12)


class TestOutageSchedule:
    def test_down_during_interval(self):
        schedule = OutageSchedule([(100.0, 200.0)])
        assert schedule.is_up(99.9)
        assert not schedule.is_up(100.0)
        assert not schedule.is_up(199.9)
        assert schedule.is_up(200.0)

    def test_multiple_outages(self):
        schedule = OutageSchedule([(300.0, 400.0), (100.0, 200.0)])
        assert not schedule.is_up(150.0)
        assert schedule.is_up(250.0)
        assert not schedule.is_up(350.0)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            OutageSchedule([(100.0, 100.0)])

    def test_outages_listed_sorted(self):
        schedule = OutageSchedule([(300.0, 400.0), (100.0, 200.0)])
        assert schedule.outages == [(100.0, 200.0), (300.0, 400.0)]


class TestErrorInjector:
    def test_zero_rate_never_fails(self):
        injector = ErrorInjector(0.0)
        assert not any(injector.should_fail() for _ in range(100))

    def test_rate_approximated(self):
        injector = ErrorInjector(0.3, seed=5, name="s")
        failures = sum(injector.should_fail() for _ in range(2000))
        assert 0.25 < failures / 2000 < 0.35

    def test_deterministic_per_seed_and_name(self):
        seq_a = [f for f in _seq(1, "x")]
        seq_b = [f for f in _seq(1, "x")]
        seq_c = [f for f in _seq(2, "x")]
        assert seq_a == seq_b
        assert seq_a != seq_c

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ErrorInjector(1.0)


def _seq(seed, name, n=50):
    injector = ErrorInjector(0.5, seed=seed, name=name)
    return [injector.should_fail() for _ in range(n)]


class TestServerUnavailable:
    def test_message_and_fields(self):
        exc = ServerUnavailable("S1", 123.0)
        assert exc.server == "S1"
        assert exc.t_ms == 123.0
        assert not exc.transient
        assert "S1" in str(exc)

    def test_transient_flag(self):
        exc = ServerUnavailable("S2", 1.0, transient=True)
        assert exc.transient
        assert "transient" in str(exc)
