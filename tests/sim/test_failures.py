"""Unit tests for availability schedules and error injection."""

import pytest

from repro.sim import (
    AlwaysUp,
    ErrorInjector,
    OutageSchedule,
    ServerUnavailable,
    WindowedErrorInjector,
)


class TestAlwaysUp:
    def test_always(self):
        assert AlwaysUp().is_up(0.0)
        assert AlwaysUp().is_up(1e12)


class TestOutageSchedule:
    def test_down_during_interval(self):
        schedule = OutageSchedule([(100.0, 200.0)])
        assert schedule.is_up(99.9)
        assert not schedule.is_up(100.0)
        assert not schedule.is_up(199.9)
        assert schedule.is_up(200.0)

    def test_multiple_outages(self):
        schedule = OutageSchedule([(300.0, 400.0), (100.0, 200.0)])
        assert not schedule.is_up(150.0)
        assert schedule.is_up(250.0)
        assert not schedule.is_up(350.0)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            OutageSchedule([(100.0, 100.0)])

    def test_outages_listed_sorted(self):
        schedule = OutageSchedule([(300.0, 400.0), (100.0, 200.0)])
        assert schedule.outages == [(100.0, 200.0), (300.0, 400.0)]

    def test_boundary_instants(self):
        """[start, end): down exactly at t==start, up exactly at t==end."""
        schedule = OutageSchedule([(100.0, 200.0), (500.0, 600.0)])
        for start, end in ((100.0, 200.0), (500.0, 600.0)):
            assert not schedule.is_up(start)
            assert schedule.is_up(end)
            # Just inside/outside the half-open interval.
            assert not schedule.is_up(end - 1e-9)
            assert schedule.is_up(start - 1e-9)

    def test_overlapping_intervals_merged(self):
        schedule = OutageSchedule(
            [(100.0, 300.0), (200.0, 400.0), (400.0, 500.0)]
        )
        # Overlap and touching intervals collapse to one [100, 500).
        assert schedule.outages == [(100.0, 500.0)]
        assert not schedule.is_up(350.0)
        assert not schedule.is_up(400.0)
        assert schedule.is_up(500.0)

    def test_contained_interval_merged(self):
        schedule = OutageSchedule([(100.0, 400.0), (150.0, 200.0)])
        assert schedule.outages == [(100.0, 400.0)]
        assert not schedule.is_up(399.9)

    def test_many_intervals_bisect_agrees_with_scan(self):
        intervals = [(float(i * 100), float(i * 100 + 50)) for i in range(50)]
        schedule = OutageSchedule(intervals)

        def linear_is_up(t):
            return not any(s <= t < e for s, e in intervals)

        for t in [x * 12.5 for x in range(0, 400)]:
            assert schedule.is_up(t) == linear_is_up(t), t


class TestErrorInjector:
    def test_zero_rate_never_fails(self):
        injector = ErrorInjector(0.0)
        assert not any(injector.should_fail() for _ in range(100))

    def test_rate_approximated(self):
        injector = ErrorInjector(0.3, seed=5, name="s")
        failures = sum(injector.should_fail() for _ in range(2000))
        assert 0.25 < failures / 2000 < 0.35

    def test_deterministic_per_seed_and_name(self):
        seq_a = [f for f in _seq(1, "x")]
        seq_b = [f for f in _seq(1, "x")]
        seq_c = [f for f in _seq(2, "x")]
        assert seq_a == seq_b
        assert seq_a != seq_c

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ErrorInjector(1.0)


def _seq(seed, name, n=50):
    injector = ErrorInjector(0.5, seed=seed, name=name)
    return [injector.should_fail() for _ in range(n)]


class TestWindowedErrorInjector:
    def test_fails_only_inside_windows(self):
        injector = WindowedErrorInjector(
            [(100.0, 200.0, 1.0)], seed=3, name="s"
        )
        assert not any(injector.should_fail(t) for t in (0.0, 99.9, 200.0))
        assert injector.should_fail(100.0)
        assert injector.should_fail(199.9)

    def test_rate_respected_in_window(self):
        injector = WindowedErrorInjector(
            [(0.0, 1e9, 0.3)], seed=5, name="s"
        )
        failures = sum(injector.should_fail(float(t)) for t in range(2000))
        assert 0.25 < failures / 2000 < 0.35

    def test_no_rng_consumed_outside_windows(self):
        """Out-of-window probes must not advance the RNG stream.

        The chaos oracle rerun shares nothing with the primary run, but
        within one run the same injector serves many probes; draws
        outside fault windows would make in-window outcomes depend on
        how many fault-free calls preceded them.
        """
        a = WindowedErrorInjector([(100.0, 200.0, 0.5)], seed=9, name="s")
        b = WindowedErrorInjector([(100.0, 200.0, 0.5)], seed=9, name="s")
        # a absorbs many out-of-window probes first; b does not.
        for t in range(90):
            a.should_fail(float(t))
        seq_a = [a.should_fail(100.0 + t) for t in range(50)]
        seq_b = [b.should_fail(100.0 + t) for t in range(50)]
        assert seq_a == seq_b

    def test_rate_at(self):
        injector = WindowedErrorInjector(
            [(100.0, 200.0, 0.4), (300.0, 400.0, 0.8)], seed=1, name="s"
        )
        assert injector.rate_at(50.0) == 0.0
        assert injector.rate_at(150.0) == 0.4
        assert injector.rate_at(350.0) == 0.8
        assert injector.rate_at(200.0) == 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowedErrorInjector([(200.0, 100.0, 0.5)])
        with pytest.raises(ValueError):
            WindowedErrorInjector([(100.0, 200.0, 1.5)])


class TestServerUnavailable:
    def test_message_and_fields(self):
        exc = ServerUnavailable("S1", 123.0)
        assert exc.server == "S1"
        assert exc.t_ms == 123.0
        assert not exc.transient
        assert "S1" in str(exc)

    def test_transient_flag(self):
        exc = ServerUnavailable("S2", 1.0, transient=True)
        assert exc.transient
        assert "transient" in str(exc)
