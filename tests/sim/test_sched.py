"""Event scheduler and capacity queues: determinism, conservation,
FIFO-vs-PS sojourn shapes."""

import pytest

from repro.sim.sched import (
    AllOf,
    Completion,
    Delay,
    EventScheduler,
    ServerQueue,
    Work,
)


def _worker(queue, demand_ms, log):
    completion = yield Work(queue, demand_ms)
    log.append(completion)


class TestEventScheduler:
    def test_equal_time_events_fire_in_scheduling_order(self):
        sched = EventScheduler()
        order = []
        sched.call_at(10.0, order.append, "first")
        sched.call_at(10.0, order.append, "second")
        sched.call_at(5.0, order.append, "earlier")
        sched.call_at(10.0, order.append, "third")
        sched.run()
        assert order == ["earlier", "first", "second", "third"]

    def test_run_returns_final_virtual_time(self):
        sched = EventScheduler()
        sched.call_at(123.5, lambda: None)
        assert sched.run() == 123.5

    def test_cannot_schedule_into_the_past(self):
        sched = EventScheduler()
        sched.call_at(100.0, lambda: None)
        sched.run()
        with pytest.raises(ValueError):
            sched.call_at(50.0, lambda: None)

    def test_delay_and_allof_resume_processes(self):
        sched = EventScheduler()
        queue = ServerQueue("S", sched, capacity=1.0)
        trail = []

        def process():
            yield Delay(5.0)
            trail.append(("woke", sched.now))
            completions = yield AllOf(
                [Work(queue, 10.0), Work(queue, 20.0), Delay(1.0)]
            )
            trail.append(("joined", sched.now))
            assert completions[2] is None  # plain delays carry no result
            assert all(
                isinstance(c, Completion) for c in completions[:2]
            )

        sched.spawn(process())
        sched.run()
        assert trail[0] == ("woke", 5.0)
        # PS over {10, 20}: sharing until the 10-unit job departs at
        # t=25, then the survivor's last 10 units run alone until 35.
        assert trail[1] == ("joined", 35.0)

    def test_spawn_at_defers_first_step(self):
        sched = EventScheduler()
        seen = []

        def process():
            seen.append(sched.now)
            yield Delay(0.0)

        sched.spawn(process(), at_ms=42.0)
        sched.run()
        assert seen == [42.0]

    def test_replay_is_deterministic(self):
        def drive():
            sched = EventScheduler()
            fifo = ServerQueue("F", sched, capacity=2.0, discipline="fifo")
            ps = ServerQueue("P", sched, capacity=2.0, discipline="ps")
            log = []
            for index in range(6):
                sched.spawn(
                    _worker(fifo, 10.0 + index, log), at_ms=index * 3.0
                )
                sched.spawn(
                    _worker(ps, 8.0 + index, log), at_ms=index * 3.0
                )
            sched.run()
            return [
                (c.queue, c.queued_ms, c.finished_ms, c.sojourn_ms)
                for c in log
            ]

        assert drive() == drive()


class TestServerQueue:
    @pytest.mark.parametrize("discipline", ["fifo", "ps"])
    def test_capacity_conservation(self, discipline):
        """Total busy time == total demand / capacity, every job is
        served exactly once, and the queue drains empty."""
        sched = EventScheduler()
        queue = ServerQueue(
            "S", sched, capacity=2.0, discipline=discipline
        )
        demands = [10.0, 4.0, 26.0, 8.0, 2.0]
        log = []
        for index, demand in enumerate(demands):
            sched.spawn(_worker(queue, demand, log), at_ms=index * 1.0)
        end = sched.run()
        assert len(log) == len(demands)
        assert queue.served == len(demands)
        assert queue.depth == 0
        assert queue.busy_ms == pytest.approx(
            sum(demands) / queue.capacity
        )
        # A single server can't finish faster than its capacity allows.
        assert end >= sum(demands) / queue.capacity

    def test_uncontended_sojourn_is_exactly_service_time(self):
        """The bit-exactness contract behind sequential equivalence: a
        lone job's sojourn must be ``demand / capacity`` exactly, even
        when the arrival instant has an awkward float representation."""
        sched = EventScheduler()
        queue = ServerQueue("S", sched, capacity=3.0)
        log = []
        sched.spawn(_worker(queue, 10.0, log), at_ms=0.1 + 0.2)  # 0.30000...4
        sched.run()
        (completion,) = log
        assert completion.contended is False
        assert completion.sojourn_ms == 10.0 / 3.0
        assert completion.wait_ms == 0.0

    def test_fifo_serialises_in_arrival_order(self):
        sched = EventScheduler()
        queue = ServerQueue("S", sched, capacity=1.0, discipline="fifo")
        log = []
        for _ in range(3):
            sched.spawn(_worker(queue, 10.0, log), at_ms=0.0)
        sched.run()
        assert [c.finished_ms for c in log] == [10.0, 20.0, 30.0]
        assert [c.sojourn_ms for c in log] == [10.0, 20.0, 30.0]
        assert [c.wait_ms for c in log] == [0.0, 10.0, 20.0]
        assert log[0].contended is False
        assert log[1].contended and log[2].contended

    def test_ps_shares_capacity_equally(self):
        """Two equal jobs arriving together each take twice their solo
        service time and finish simultaneously — the egalitarian-PS
        signature FIFO cannot produce."""
        sched = EventScheduler()
        queue = ServerQueue("S", sched, capacity=1.0, discipline="ps")
        log = []
        for _ in range(2):
            sched.spawn(_worker(queue, 10.0, log), at_ms=0.0)
        sched.run()
        assert [c.finished_ms for c in log] == [20.0, 20.0]
        assert all(c.contended for c in log)
        assert all(c.sojourn_ms == pytest.approx(20.0) for c in log)

    def test_ps_vs_fifo_sojourn_shape(self):
        """Same workload, both disciplines: FIFO lets the short job jump
        out fast behind nothing, PS drags every resident; total drain
        time is identical (work conservation)."""

        def drive(discipline):
            sched = EventScheduler()
            queue = ServerQueue(
                "S", sched, capacity=1.0, discipline=discipline
            )
            log = []
            sched.spawn(_worker(queue, 30.0, log), at_ms=0.0)
            sched.spawn(_worker(queue, 3.0, log), at_ms=1.0)
            sched.run()
            return {c.demand_ms: c.sojourn_ms for c in log}

        fifo, ps = drive("fifo"), drive("ps")
        # FIFO: the short job waits out the long one's full residual.
        assert fifo[3.0] == pytest.approx(32.0)
        assert fifo[30.0] == pytest.approx(30.0)
        # PS: the short job only pays double while sharing (sojourn 6);
        # the long job pays for the company instead (sojourn 33).
        assert ps[3.0] == pytest.approx(6.0)
        assert ps[30.0] == pytest.approx(33.0)
        # Work conservation: both disciplines drain the 33 ms of demand
        # at the same instant, t = 33.
        assert 1.0 + fifo[3.0] == pytest.approx(33.0)
        assert ps[30.0] == pytest.approx(33.0)

    def test_ps_departure_ties_break_by_arrival_order(self):
        sched = EventScheduler()
        queue = ServerQueue("S", sched, capacity=1.0, discipline="ps")
        log = []
        for _ in range(3):
            sched.spawn(_worker(queue, 12.0, log), at_ms=0.0)
        sched.run()
        # Identical demands: all depart at 36 in submission order.
        assert [c.finished_ms for c in log] == [36.0, 36.0, 36.0]
        assert [c.depth_at_arrival for c in log] == [1, 2, 3]

    def test_backlog_ms_predicts_drain_time(self):
        sched = EventScheduler()
        fifo = ServerQueue("F", sched, capacity=2.0, discipline="fifo")
        ps = ServerQueue("P", sched, capacity=2.0, discipline="ps")
        log = []
        for queue in (fifo, ps):
            sched.spawn(_worker(queue, 10.0, log), at_ms=0.0)
            sched.spawn(_worker(queue, 6.0, log), at_ms=0.0)
        sched.run(until_ms=0.0)
        assert fifo.backlog_ms(0.0) == pytest.approx(8.0)
        assert ps.backlog_ms(0.0) == pytest.approx(8.0)
        sched.run()
        assert fifo.backlog_ms(sched.now) == 0.0
        assert ps.backlog_ms(sched.now) == 0.0

    def test_max_depth_tracks_peak_concurrency(self):
        sched = EventScheduler()
        queue = ServerQueue("S", sched, capacity=1.0, discipline="ps")
        log = []
        for index in range(4):
            sched.spawn(_worker(queue, 5.0, log), at_ms=float(index))
        sched.run()
        assert queue.max_depth == 4

    def test_rejects_invalid_configuration(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            ServerQueue("S", sched, capacity=0.0)
        with pytest.raises(ValueError):
            ServerQueue("S", sched, discipline="lifo")
        queue = ServerQueue("S", sched)
        with pytest.raises(ValueError):
            queue.submit(-1.0, lambda completion: None)
        with pytest.raises(ValueError):
            Work(queue, -2.0)
        with pytest.raises(ValueError):
            Delay(-1.0)


class TestCancellation:
    def test_fifo_cancel_queued_job_restacks_tail(self):
        """Cancelling a queued job moves later arrivals up; their
        completions fire at the re-derived earlier instants."""
        sched = EventScheduler()
        queue = ServerQueue("S", sched, capacity=1.0, discipline="fifo")
        log = []
        jobs = {}

        def driver():
            jobs["a"] = queue.submit(10.0, log.append)
            jobs["b"] = queue.submit(10.0, log.append)
            jobs["c"] = queue.submit(10.0, log.append)
            yield Delay(2.0)
            wasted = queue.cancel(jobs["b"])
            assert wasted == 0.0  # never reached the server

        sched.spawn(driver())
        sched.run()
        assert [c.finished_ms for c in log] == [10.0, 20.0]
        assert queue.served == 2
        assert queue.cancelled_jobs == 1
        assert queue.depth == 0

    def test_fifo_cancel_in_service_releases_capacity(self):
        """Cancelling the job *in service* frees the server immediately:
        the next job starts at the cancel instant, and the wasted time
        equals the service already consumed."""
        sched = EventScheduler()
        queue = ServerQueue("S", sched, capacity=1.0, discipline="fifo")
        log = []
        jobs = {}

        def driver():
            jobs["a"] = queue.submit(10.0, log.append)
            jobs["b"] = queue.submit(5.0, log.append)
            yield Delay(4.0)
            wasted = queue.cancel(jobs["a"])
            assert wasted == 4.0

        sched.spawn(driver())
        sched.run()
        assert len(log) == 1
        # b starts at the cancel instant (t=4) and runs 5ms.
        assert log[0].finished_ms == 9.0
        assert queue.backlog_ms(sched.now) == 0.0

    def test_ps_cancel_speeds_up_survivor(self):
        """Removing one of two PS residents doubles the survivor's rate."""
        sched = EventScheduler()
        queue = ServerQueue("S", sched, capacity=1.0, discipline="ps")
        log = []
        jobs = {}

        def driver():
            jobs["a"] = queue.submit(10.0, log.append)
            jobs["b"] = queue.submit(10.0, log.append)
            yield Delay(4.0)
            # Both have burned 2ms of service (rate 1/2 each).
            wasted = queue.cancel(jobs["b"])
            assert wasted == pytest.approx(2.0)

        sched.spawn(driver())
        sched.run()
        assert len(log) == 1
        # Survivor: 2ms done at t=4, 8ms left at full rate -> t=12.
        assert log[0].finished_ms == pytest.approx(12.0)

    def test_cancel_completed_or_cancelled_job_is_noop(self):
        sched = EventScheduler()
        queue = ServerQueue("S", sched, capacity=1.0, discipline="fifo")
        done = []
        job = queue.submit(5.0, done.append)
        sched.run()
        assert len(done) == 1
        assert queue.cancel(job) == 0.0  # already completed
        job2 = queue.submit(5.0, done.append)
        queue.cancel(job2)
        assert queue.cancel(job2) == 0.0  # already cancelled
        sched.run()
        assert len(done) == 1


class TestHedgedWork:
    def _hedge(self, sched, primary_queue, backup_queue, primary_ms,
               backup_ms, after_ms, outcomes, decline=False):
        from repro.sim.sched import HedgedWork

        def factory(t_fire):
            if decline:
                return None
            return Work(backup_queue, backup_ms)

        def process():
            outcome = yield HedgedWork(
                primary=Work(primary_queue, primary_ms),
                hedge_after_ms=after_ms,
                backup_factory=factory,
            )
            outcomes.append(outcome)

        sched.spawn(process())

    def test_backup_fires_only_after_timeout(self):
        """A fast primary completes before the timer: no hedge, and the
        completion is bit-identical to a plain Work submission."""
        sched = EventScheduler()
        fast = ServerQueue("S1", sched, capacity=1.0)
        backup = ServerQueue("S2", sched, capacity=1.0)
        outcomes = []
        self._hedge(sched, fast, backup, 5.0, 5.0, 10.0, outcomes)
        sched.run()
        (outcome,) = outcomes
        assert outcome.winner == "primary"
        assert not outcome.hedged
        assert outcome.backup_fired_ms is None
        assert outcome.wasted_ms == 0.0
        assert backup.served == 0 and backup.max_depth == 0
        assert outcome.completion.sojourn_ms == 5.0

    def test_backup_wins_when_primary_stalls(self):
        """Primary queued behind a long backlog: the hedge fires at the
        timeout, the idle backup wins, and the primary's unstarted work
        is released (zero waste)."""
        sched = EventScheduler()
        slow = ServerQueue("S1", sched, capacity=1.0, discipline="fifo")
        backup = ServerQueue("S2", sched, capacity=1.0, discipline="fifo")
        blocker = []
        slow.submit(100.0, blocker.append)  # pre-existing backlog
        outcomes = []
        self._hedge(sched, slow, backup, 10.0, 10.0, 20.0, outcomes)
        sched.run()
        (outcome,) = outcomes
        assert outcome.winner == "backup"
        assert outcome.hedged
        assert outcome.backup_fired_ms == 20.0
        assert outcome.completion.finished_ms == 30.0
        assert outcome.wasted_ms == 0.0  # primary never started
        assert slow.cancelled_jobs == 1
        # The blocker still completes normally.
        assert blocker and blocker[0].finished_ms == 100.0

    def test_losing_backup_is_cancelled_and_capacity_released(self):
        """Primary finishes first after the hedge fired: the backup is
        cancelled and its queue drains immediately."""
        sched = EventScheduler()
        primary = ServerQueue("S1", sched, capacity=1.0, discipline="fifo")
        backup = ServerQueue("S2", sched, capacity=1.0, discipline="fifo")
        outcomes = []
        # Primary takes 30ms; hedge fires at 20ms; backup would take
        # 50ms, so the primary wins at t=30 and the backup (10ms into
        # its service) is cancelled.
        self._hedge(sched, primary, backup, 30.0, 50.0, 20.0, outcomes)
        sched.run()
        (outcome,) = outcomes
        assert outcome.winner == "primary"
        assert outcome.hedged
        assert outcome.wasted_ms == pytest.approx(10.0)
        assert backup.cancelled_jobs == 1
        assert backup.depth == 0
        assert backup.backlog_ms(sched.now) == 0.0

    def test_declined_factory_leaves_primary_untouched(self):
        sched = EventScheduler()
        primary = ServerQueue("S1", sched, capacity=1.0)
        backup = ServerQueue("S2", sched, capacity=1.0)
        outcomes = []
        self._hedge(
            sched, primary, backup, 30.0, 10.0, 5.0, outcomes, decline=True
        )
        sched.run()
        (outcome,) = outcomes
        assert outcome.winner == "primary"
        assert not outcome.hedged
        assert outcome.completion.sojourn_ms == 30.0
        assert backup.served == 0
