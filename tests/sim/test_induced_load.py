"""Unit tests for traffic-induced load (the Section 4 hot-spot model)."""

import pytest

from repro.sim import InducedLoad, MutableLoad


class TestInducedLoad:
    def test_idle_is_base(self):
        load = InducedLoad(base=MutableLoad(0.2))
        assert load.level(0.0) == pytest.approx(0.2)

    def test_work_raises_level(self):
        load = InducedLoad(gain=0.01)
        before = load.level(0.0)
        load.note_work(0.0, 50.0)
        assert load.level(0.0) > before

    def test_decay_over_time(self):
        load = InducedLoad(gain=0.01, decay_ms=100.0)
        load.note_work(0.0, 50.0)
        hot = load.level(0.0)
        cooled = load.level(1_000.0)  # ten time constants later
        assert cooled < hot * 0.01 + 0.01

    def test_cap(self):
        load = InducedLoad(gain=1.0, cap=0.9)
        load.note_work(0.0, 1e9)
        assert load.level(0.0) <= 0.949

    def test_base_plus_induced_bounded(self):
        base = MutableLoad(0.9)
        load = InducedLoad(gain=1.0, cap=0.9, base=base)
        load.note_work(0.0, 1e9)
        assert load.level(0.0) < 0.95

    def test_accumulates(self):
        load = InducedLoad(gain=0.001, decay_ms=1e9)
        load.note_work(0.0, 10.0)
        one = load.level(0.0)
        load.note_work(0.0, 10.0)
        assert load.level(0.0) > one

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            InducedLoad(gain=-1.0)
        with pytest.raises(ValueError):
            InducedLoad(decay_ms=0.0)
        with pytest.raises(ValueError):
            InducedLoad(cap=1.0)


class TestServerFeedback:
    def test_repeated_queries_heat_up_server(self, tiny_specs):
        from repro.sim import RemoteServer
        from repro.sqlengine import Database, populate

        db = Database("srv")
        populate(db, tiny_specs, seed=42)
        load = InducedLoad(gain=0.05, decay_ms=10_000.0)
        server = RemoteServer("srv", db, load=load)
        plan = server.explain("SELECT COUNT(*) FROM emp", 0.0)[0].plan

        first = server.execute_plan(plan, 0.0).processing_ms
        for _ in range(10):
            server.execute_plan(plan, 0.0)
        heated = server.execute_plan(plan, 0.0).processing_ms
        assert heated > first

    def test_cooldown_restores_speed(self, tiny_specs):
        from repro.sim import RemoteServer
        from repro.sqlengine import Database, populate

        db = Database("srv")
        populate(db, tiny_specs, seed=42)
        load = InducedLoad(gain=0.05, decay_ms=500.0)
        server = RemoteServer("srv", db, load=load)
        plan = server.explain("SELECT COUNT(*) FROM emp", 0.0)[0].plan
        for _ in range(10):
            server.execute_plan(plan, 0.0)
        hot = server.execute_plan(plan, 0.0).processing_ms
        cooled = server.execute_plan(plan, 50_000.0).processing_ms
        assert cooled < hot
