"""Unit tests for the network model."""

import pytest

from repro.sim import ConstantLoad, NetworkLink


class TestLatency:
    def test_uncongested(self):
        link = NetworkLink(latency_ms=10.0)
        assert link.one_way_ms(0.0) == 10.0
        assert link.round_trip_ms(0.0) == 20.0

    def test_congestion_inflates_latency(self):
        quiet = NetworkLink(latency_ms=10.0)
        congested = NetworkLink(
            latency_ms=10.0, congestion=ConstantLoad(0.5), latency_slope=8.0
        )
        assert congested.one_way_ms(0.0) == pytest.approx(50.0)
        assert congested.one_way_ms(0.0) > quiet.one_way_ms(0.0)

    def test_jitter_bounded_and_deterministic(self):
        link_a = NetworkLink(latency_ms=10.0, jitter_fraction=0.2, seed=1)
        link_b = NetworkLink(latency_ms=10.0, jitter_fraction=0.2, seed=1)
        values_a = [link_a.one_way_ms(0.0) for _ in range(10)]
        values_b = [link_b.one_way_ms(0.0) for _ in range(10)]
        assert values_a == values_b
        assert all(10.0 <= v <= 12.0 for v in values_a)


class TestTransfer:
    def test_zero_bytes(self):
        assert NetworkLink().transfer_ms(0.0, 0.0) == 0.0

    def test_transfer_time_math(self):
        # 100 Mbps = 12.5 MB/s = 12500 bytes/ms
        link = NetworkLink(latency_ms=0.0, bandwidth_mbps=100.0)
        assert link.transfer_ms(12_500.0, 0.0) == pytest.approx(1.0)

    def test_congestion_halves_bandwidth(self):
        quiet = NetworkLink(bandwidth_mbps=100.0)
        busy = NetworkLink(bandwidth_mbps=100.0, congestion=ConstantLoad(0.99))
        assert busy.transfer_ms(10_000.0, 0.0) == pytest.approx(
            quiet.transfer_ms(10_000.0, 0.0) * 1.99
        )

    def test_request_response_combines(self):
        link = NetworkLink(latency_ms=5.0, bandwidth_mbps=100.0)
        total = link.request_response_ms(1_000.0, 10_000.0, 0.0)
        assert total == pytest.approx(
            link.round_trip_ms(0.0)
            + link.transfer_ms(1_000.0, 0.0)
            + link.transfer_ms(10_000.0, 0.0)
        )


class TestValidation:
    def test_negative_latency(self):
        with pytest.raises(ValueError):
            NetworkLink(latency_ms=-1.0)

    def test_zero_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkLink(bandwidth_mbps=0.0)
