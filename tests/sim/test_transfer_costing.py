"""Wire-cost regression: columnar transfer vs the row-width estimate.

The columnar transfer mode charges the simulated wire by
``ColumnBatch.storage_bytes()`` — measured bytes of the typed encoding —
instead of ``row_count * row_width_bytes``.  These tests pin the
relationship between the two costings:

* rows mode is byte-for-byte the pre-columnar computation (and carries
  no batch records at all);
* the per-batch attribution is pure bookkeeping — processing, network
  and byte shares sum *bit-exactly* to the execution totals;
* for pure-numeric schemas the measured costing tracks the estimate:
  at least the 8-bytes-per-value payload, at most the payload plus a
  documented per-batch container overhead;
* dictionary-encoded string columns are strictly cheaper than the
  40-bytes-per-value row estimate (24 base + 16 average length).
"""

from array import array
from sys import getsizeof

import pytest

from repro.sim import (
    ContentionProfile,
    MutableLoad,
    NetworkLink,
    RemoteServer,
    TransferBatch,
    transfer_spans,
)
from repro.sqlengine import (
    ColumnType,
    Choice,
    Database,
    Serial,
    ServerProfile,
    TableSpec,
    UniformInt,
    populate,
)

#: Container overhead of one empty typed array — the fixed cost each
#: encoded column pays per batch on top of its 8-bytes-per-value data.
ARRAY_OVERHEAD = getsizeof(array("q"))

NUMERIC_SQL = "SELECT empno, deptno, salary FROM emp"
STRING_SQL = "SELECT city FROM sites"

SPECS_WITH_STRINGS = (
    TableSpec(
        "sites",
        (
            ("site_id", ColumnType.INT, Serial()),
            (
                "city",
                ColumnType.STR,
                Choice(("almaden", "beaverton", "cupertino", "delhi")),
            ),
        ),
        row_count=240,
    ),
)


def _server(specs, transfer, batch_rows=1024, name="srv"):
    db = Database(
        name, profile=ServerProfile(name, cpu_speed=2.0, io_speed=2.0)
    )
    populate(db, specs, seed=42)
    return RemoteServer(
        name=name,
        database=db,
        contention=ContentionProfile(0.9, 0.9),
        load=MutableLoad(0.0),
        link=NetworkLink(latency_ms=5.0, bandwidth_mbps=100.0),
        transfer=transfer,
        transfer_batch_rows=batch_rows,
    )


@pytest.fixture()
def paired(tiny_specs):
    """The same data behind both transfer modes (batching at 64 rows)."""
    return (
        _server(tiny_specs, "rows"),
        _server(tiny_specs, "columnar", batch_rows=64),
    )


class TestRowsModeUnchanged:
    def test_no_batch_records(self, paired):
        rows_server, _ = paired
        execution = rows_server.execute_sql(NUMERIC_SQL, 0.0)
        assert execution.batches == ()

    def test_row_width_costing(self, paired):
        rows_server, _ = paired
        plan = rows_server.explain(NUMERIC_SQL, 0.0)[0].plan
        execution = rows_server.execute_plan(plan, 0.0)
        expected_bytes = (
            execution.row_count * plan.output_schema.row_width_bytes()
        )
        assert execution.network_ms == rows_server.link.request_response_ms(
            512.0, expected_bytes, 0.0
        )

    def test_modes_agree_on_rows_and_processing(self, paired):
        rows_server, col_server = paired
        by_rows = rows_server.execute_sql(NUMERIC_SQL, 0.0)
        by_cols = col_server.execute_sql(NUMERIC_SQL, 0.0)
        assert by_cols.rows == by_rows.rows
        # Only the wire is re-costed; the server did identical work.
        assert by_cols.processing_ms == by_rows.processing_ms


class TestBatchAttribution:
    def test_shares_sum_bit_exactly(self, paired):
        _, col_server = paired
        execution = col_server.execute_sql(NUMERIC_SQL, 0.0)
        assert len(execution.batches) > 1
        assert (
            sum(b.processing_ms for b in execution.batches)
            == execution.processing_ms
        )
        assert (
            sum(b.network_ms for b in execution.batches)
            == execution.network_ms
        )

    def test_spans_tile_the_result(self, paired):
        _, col_server = paired
        execution = col_server.execute_sql(NUMERIC_SQL, 0.0)
        expected = transfer_spans(execution.row_count, 64)
        assert [
            (b.start_row, b.stop_row) for b in execution.batches
        ] == expected
        assert (
            sum(b.row_count for b in execution.batches)
            == execution.row_count
        )

    def test_batch_demand_is_processing_plus_network(self):
        batch = TransferBatch(
            start_row=0,
            stop_row=4,
            wire_bytes=128,
            processing_ms=1.5,
            network_ms=0.25,
        )
        assert batch.demand_ms == 1.75
        assert batch.row_count == 4


class TestNumericBounds:
    def test_measured_cost_tracks_row_estimate(self, paired):
        rows_server, col_server = paired
        plan = rows_server.explain(NUMERIC_SQL, 0.0)[0].plan
        by_rows = rows_server.execute_plan(plan, 0.0)
        by_cols = col_server.execute_sql(NUMERIC_SQL, 0.0)
        estimate = by_rows.row_count * plan.output_schema.row_width_bytes()
        measured = sum(b.wire_bytes for b in by_cols.batches)
        n_cols = len(plan.output_schema)
        # Typed arrays carry the full 8-byte values the estimate
        # assumes, so the payload floor holds...
        assert measured >= estimate
        # ...and the only markup is bounded container overhead: one
        # array header per column per batch (plus allocator slack the
        # same order of magnitude, hence the factor of two).
        ceiling = estimate + len(by_cols.batches) * n_cols * (
            2 * ARRAY_OVERHEAD
        )
        assert measured <= ceiling


class TestDictStringsCheaper:
    def test_low_cardinality_strings_beat_row_costing(self):
        rows_server = _server(SPECS_WITH_STRINGS, "rows", name="a")
        col_server = _server(SPECS_WITH_STRINGS, "columnar", name="b")
        plan = rows_server.explain(STRING_SQL, 0.0)[0].plan
        by_rows = rows_server.execute_plan(plan, 0.0)
        by_cols = col_server.execute_sql(STRING_SQL, 0.0)
        assert by_cols.rows == by_rows.rows
        # Row costing charges 24 + 16 = 40 bytes per string value; the
        # dictionary encoding ships one 8-byte code per row plus a
        # four-entry dictionary, and must win outright.
        estimate = by_rows.row_count * plan.output_schema.row_width_bytes()
        measured = sum(b.wire_bytes for b in by_cols.batches)
        assert measured < estimate
        # The saving shows up as a faster wire, nothing else moves.
        assert by_cols.network_ms < by_rows.network_ms
        assert by_cols.processing_ms == by_rows.processing_ms


class TestValidation:
    def test_unknown_transfer_mode_rejected(self, tiny_specs):
        with pytest.raises(ValueError):
            _server(tiny_specs, "parquet")

    def test_nonpositive_batch_rows_rejected(self, tiny_specs):
        with pytest.raises(ValueError):
            _server(tiny_specs, "columnar", batch_rows=0)
