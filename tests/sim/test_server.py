"""Unit tests for the simulated remote server."""

import pytest

from repro.sim import (
    ContentionProfile,
    ErrorInjector,
    MutableLoad,
    NetworkLink,
    OutageSchedule,
    RemoteServer,
    ServerUnavailable,
)
from repro.sqlengine import Database, ServerProfile, populate


@pytest.fixture()
def server(tiny_specs):
    db = Database("srv", profile=ServerProfile("srv", cpu_speed=2.0, io_speed=2.0))
    populate(db, tiny_specs, seed=42)
    return RemoteServer(
        name="srv",
        database=db,
        contention=ContentionProfile(0.9, 0.9),
        load=MutableLoad(0.0),
        link=NetworkLink(latency_ms=5.0, bandwidth_mbps=100.0),
    )


SQL = "SELECT deptno, COUNT(*) FROM emp WHERE salary > 2000 GROUP BY deptno"


class TestExplain:
    def test_estimates_are_load_blind(self, server):
        base = server.explain(SQL, 0.0)[0].cost.total
        server.load.set(0.9)
        loaded = server.explain(SQL, 0.0)[0].cost.total
        assert base == loaded

    def test_raises_when_down(self, tiny_specs):
        db = Database("d")
        populate(db, tiny_specs, seed=42)
        server = RemoteServer(
            "d", db, availability=OutageSchedule([(0.0, 100.0)])
        )
        with pytest.raises(ServerUnavailable):
            server.explain(SQL, 50.0)
        assert server.explain(SQL, 150.0)


class TestExecute:
    def test_processing_increases_with_load(self, server):
        plan = server.explain(SQL, 0.0)[0].plan
        base = server.execute_plan(plan, 0.0)
        server.load.set(0.8)
        loaded = server.execute_plan(plan, 0.0)
        # M/M/1 with sensitivity 0.9 at level 0.8 -> multiplier ~3.6x.
        assert loaded.processing_ms > base.processing_ms * 2
        assert loaded.observed_ms > base.observed_ms

    def test_observed_monotone_in_load(self, server):
        plan = server.explain(SQL, 0.0)[0].plan
        samples = []
        for level in (0.0, 0.3, 0.6, 0.9):
            server.load.set(level)
            samples.append(server.execute_plan(plan, 0.0).observed_ms)
        assert samples == sorted(samples)

    def test_network_included(self, server):
        plan = server.explain(SQL, 0.0)[0].plan
        execution = server.execute_plan(plan, 0.0)
        assert execution.network_ms >= server.link.round_trip_ms(0.0)
        assert execution.observed_ms == pytest.approx(
            execution.processing_ms + execution.network_ms
        )

    def test_rows_returned(self, server):
        plan = server.explain(SQL, 0.0)[0].plan
        execution = server.execute_plan(plan, 0.0)
        assert execution.row_count == len(execution.rows) > 0
        assert execution.finished_ms == execution.started_ms + execution.observed_ms

    def test_transient_errors_raise(self, tiny_specs):
        db = Database("d")
        populate(db, tiny_specs, seed=42)
        server = RemoteServer("d", db, errors=ErrorInjector(0.99, seed=1, name="d"))
        plan = server.explain(SQL, 0.0)[0].plan
        with pytest.raises(ServerUnavailable) as err:
            for _ in range(20):
                server.execute_plan(plan, 0.0)
        assert err.value.transient

    def test_execute_sql_convenience(self, server):
        execution = server.execute_sql(SQL, 0.0)
        assert execution.row_count > 0


class TestProbes:
    def test_ping_returns_rtt(self, server):
        assert server.ping(0.0) == pytest.approx(10.0)

    def test_ping_raises_when_down(self, tiny_specs):
        db = Database("d")
        populate(db, tiny_specs, seed=42)
        server = RemoteServer("d", db, availability=OutageSchedule([(0.0, 10.0)]))
        with pytest.raises(ServerUnavailable):
            server.ping(5.0)

    def test_probe_query_ratio_reflects_load(self, server):
        est_base, obs_base = server.probe_query(0.0)
        server.load.set(0.85)
        est_loaded, obs_loaded = server.probe_query(0.0)
        assert est_base == est_loaded  # estimates stay load-blind
        assert obs_loaded > obs_base
        assert obs_loaded / est_loaded > obs_base / est_base

    def test_probe_uses_largest_table(self, server):
        est, _ = server.probe_query(0.0)
        # emp (300 rows) dominates dept (20); a count over emp costs more
        # than any plausible dept scan at this scale.
        dept_cost = server.database.explain("SELECT COUNT(*) FROM dept")[0].cost.total
        assert est > dept_cost
