"""Tests for replica currency tracking and staleness-tolerant routing."""

import pytest

from repro.fed import FederationError, ReplicaManager
from repro.harness import build_federation
from repro.sim import UpdateStormDriver
from repro.workload import TEST_SCALE

SQL = "SELECT COUNT(*) FROM supplier"


@pytest.fixture()
def deployment(sample_databases):
    deployment = build_federation(
        scale=TEST_SCALE, with_qcc=False, prebuilt_databases=sample_databases
    )
    manager = ReplicaManager(deployment.registry)
    deployment.integrator.replica_manager = manager
    return deployment, manager


class TestReplicaManager:
    def test_default_origin_is_first_placement(self, deployment):
        _, manager = deployment
        assert manager.origin_of("supplier") == "S1"

    def test_set_origin_validates_placement(self, deployment):
        _, manager = deployment
        manager.set_origin("supplier", "S2")
        assert manager.origin_of("supplier") == "S2"
        with pytest.raises(FederationError):
            manager.set_origin("supplier", "S9")

    def test_origin_is_never_stale(self, deployment):
        _, manager = deployment
        manager.note_write("supplier", 100.0)
        assert manager.staleness_ms("supplier", "S1", 500.0) == 0.0

    def test_write_makes_replicas_stale(self, deployment):
        _, manager = deployment
        manager.note_write("supplier", 100.0)
        assert manager.staleness_ms("supplier", "S2", 500.0) == 400.0
        assert manager.staleness_ms("supplier", "S3", 500.0) == 400.0

    def test_staleness_anchored_to_oldest_unsynced_write(self, deployment):
        _, manager = deployment
        manager.note_write("supplier", 100.0)
        manager.note_write("supplier", 400.0)  # later write doesn't reset
        assert manager.staleness_ms("supplier", "S2", 500.0) == 400.0

    def test_sync_restores_currency_and_data(self, deployment):
        dep, manager = deployment
        # Real divergence: delete rows at the origin.
        dep.servers["S1"].database.run_dml(
            "DELETE FROM supplier WHERE suppkey <= 10"
        )
        manager.note_write("supplier", 100.0)
        copied = manager.sync("supplier", "S2", dep.servers, 200.0)
        assert copied == dep.servers["S1"].database.row_count("supplier")
        assert manager.staleness_ms("supplier", "S2", 999.0) == 0.0
        assert dep.servers["S2"].database.row_count("supplier") == copied

    def test_sync_origin_is_noop(self, deployment):
        dep, manager = deployment
        assert manager.sync("supplier", "S1", dep.servers, 0.0) == 0

    def test_stale_placements_listing(self, deployment):
        _, manager = deployment
        manager.note_write("supplier", 100.0)
        stale = manager.stale_placements(500.0)
        assert {(s.nickname, s.server) for s in stale} == {
            ("supplier", "S2"),
            ("supplier", "S3"),
        }
        assert all(not s.is_origin for s in stale)

    def test_fresh_servers_intersection(self, deployment):
        _, manager = deployment
        manager.note_write("supplier", 100.0)
        fresh = manager.fresh_servers(["supplier"], 500.0, tolerance_ms=1000.0)
        assert fresh == frozenset({"S1", "S2", "S3"})  # within tolerance
        fresh = manager.fresh_servers(["supplier"], 500.0, tolerance_ms=100.0)
        assert fresh == frozenset({"S1"})


class TestSyncDaemon:
    def test_periodic_sync(self, deployment):
        from repro.fed import ReplicaSyncDaemon

        dep, manager = deployment
        daemon = ReplicaSyncDaemon(
            manager, dep.servers, interval_ms=1_000.0
        )
        manager.note_write("supplier", 100.0)
        assert daemon.tick(500.0) == 0  # not due yet
        copied = daemon.tick(1_500.0)
        assert copied > 0
        assert daemon.sync_rounds == 1
        assert manager.stale_placements(1_600.0) == []

    def test_noop_when_nothing_stale(self, deployment):
        from repro.fed import ReplicaSyncDaemon

        dep, manager = deployment
        daemon = ReplicaSyncDaemon(
            manager, dep.servers, interval_ms=1_000.0
        )
        assert daemon.tick(2_000.0) == 0
        assert daemon.rows_copied == 0


class TestStalenessTolerantRouting:
    def test_stale_replicas_excluded_from_routing(self, deployment):
        dep, manager = deployment
        manager.note_write("supplier", dep.clock.now)
        dep.clock.advance(5_000.0)
        result = dep.integrator.submit(SQL, staleness_tolerance_ms=1_000.0)
        assert result.plan.servers == frozenset({"S1"})  # origin only

    def test_tolerant_query_uses_any_replica(self, deployment):
        dep, manager = deployment
        manager.note_write("supplier", dep.clock.now)
        dep.clock.advance(5_000.0)
        result = dep.integrator.submit(SQL, staleness_tolerance_ms=1e9)
        # cheapest server wins as usual
        assert result.plan.servers == frozenset({"S3"})

    def test_no_tolerance_means_no_filtering(self, deployment):
        dep, manager = deployment
        manager.note_write("supplier", dep.clock.now)
        result = dep.integrator.submit(SQL)
        assert result.plan.servers == frozenset({"S3"})

    def test_sync_readmits_replica(self, deployment):
        dep, manager = deployment
        manager.note_write("supplier", dep.clock.now)
        dep.clock.advance(5_000.0)
        manager.sync("supplier", "S3", dep.servers, dep.clock.now)
        result = dep.integrator.submit(SQL, staleness_tolerance_ms=1_000.0)
        assert result.plan.servers == frozenset({"S3"})

    def test_storm_hook_marks_staleness(self, deployment):
        dep, manager = deployment
        storm = UpdateStormDriver(
            dep.servers["S1"],
            table="supplier",
            on_write=lambda table, t: manager.note_write(table, t),
        )
        storm.burst(dep.clock.now, statements=3)
        dep.clock.advance(2_000.0)
        assert manager.staleness_ms(
            "supplier", "S2", dep.clock.now
        ) == pytest.approx(2_000.0)
        result = dep.integrator.submit(SQL, staleness_tolerance_ms=500.0)
        assert result.plan.servers == frozenset({"S1"})
