"""Unit tests for federated query decomposition."""

import pytest

from repro.fed import FederationError, NicknameRegistry, decompose
from repro.sqlengine import parse


@pytest.fixture()
def replicated_registry(sample_databases):
    """All tables on all three servers (full replication)."""
    registry = NicknameRegistry()
    for index, (server, db) in enumerate(sorted(sample_databases.items())):
        for name in db.catalog.table_names():
            if index == 0:
                registry.register(name, server, table_def=db.catalog.lookup(name))
            else:
                registry.register(name, server)
    return registry


@pytest.fixture()
def split_registry(sample_databases):
    """orders/customer on {S1,R1}; lineitem/product on {S2,R2}."""
    registry = NicknameRegistry()
    db = sample_databases["S1"]
    for name in ("orders", "customer"):
        registry.register(name, "S1", table_def=db.catalog.lookup(name))
        registry.register(name, "R1")
    for name in ("lineitem", "product"):
        registry.register(name, "S2", table_def=db.catalog.lookup(name))
        registry.register(name, "R2")
    return registry


JOIN_SQL = (
    "SELECT o.priority, COUNT(*) AS n FROM orders o "
    "JOIN lineitem l ON o.orderkey = l.orderkey "
    "WHERE o.totalprice > 5000 GROUP BY o.priority"
)


class TestSingleFragment:
    def test_full_pushdown_when_colocated(self, replicated_registry):
        decomposed = decompose(JOIN_SQL, replicated_registry)
        assert decomposed.is_single_fragment
        fragment = decomposed.fragments[0]
        assert fragment.full_pushdown
        assert fragment.candidate_servers == ("S1", "S2", "S3")
        assert fragment.sql == parse(JOIN_SQL).sql()
        assert decomposed.cross_edges == ()

    def test_single_table(self, replicated_registry):
        decomposed = decompose(
            "SELECT custkey FROM customer WHERE acctbal > 100",
            replicated_registry,
        )
        assert decomposed.is_single_fragment
        assert decomposed.fragments[0].nicknames == ("customer",)

    def test_unknown_nickname(self, replicated_registry):
        with pytest.raises(Exception):
            decompose("SELECT * FROM ghost", replicated_registry)


class TestMultiFragment:
    def test_split_by_colocation(self, split_registry):
        decomposed = decompose(JOIN_SQL, split_registry)
        assert len(decomposed.fragments) == 2
        by_nick = {f.nicknames: f for f in decomposed.fragments}
        orders = by_nick[("orders",)]
        lineitem = by_nick[("lineitem",)]
        assert orders.candidate_servers == ("R1", "S1")
        assert lineitem.candidate_servers == ("R2", "S2")
        assert len(decomposed.cross_edges) == 1

    def test_fragment_sql_pushes_local_predicate(self, split_registry):
        decomposed = decompose(JOIN_SQL, split_registry)
        orders = next(
            f for f in decomposed.fragments if f.nicknames == ("orders",)
        )
        assert "totalprice > 5000" in orders.sql
        assert not orders.full_pushdown

    def test_fragment_output_covers_needed_columns(self, split_registry):
        decomposed = decompose(JOIN_SQL, split_registry)
        orders = next(
            f for f in decomposed.fragments if f.nicknames == ("orders",)
        )
        names = {c.qualified_name for c in orders.output_schema.columns}
        # join key and group-by column must survive the projection
        assert "o.orderkey" in names
        assert "o.priority" in names

    def test_fragment_sql_parses_and_aliases(self, split_registry):
        decomposed = decompose(JOIN_SQL, split_registry)
        for fragment in decomposed.fragments:
            statement = parse(fragment.sql)
            assert statement.tables  # valid SQL

    def test_colocated_join_plus_remote_table(self, split_registry):
        sql = (
            "SELECT o.priority, COUNT(*) AS n FROM orders o "
            "JOIN customer c ON o.custkey = c.custkey "
            "JOIN lineitem l ON o.orderkey = l.orderkey "
            "GROUP BY o.priority"
        )
        decomposed = decompose(sql, split_registry)
        assert len(decomposed.fragments) == 2
        grouped = next(
            f for f in decomposed.fragments if len(f.bindings) == 2
        )
        assert set(grouped.nicknames) == {"orders", "customer"}
        # the co-located equijoin is inside the fragment SQL
        assert "custkey" in grouped.sql

    def test_fragment_for_binding(self, split_registry):
        decomposed = decompose(JOIN_SQL, split_registry)
        assert decomposed.fragment_for_binding("o").nicknames == ("orders",)
        with pytest.raises(FederationError):
            decomposed.fragment_for_binding("zzz")


class TestSignature:
    def test_signature_is_sql(self, replicated_registry):
        decomposed = decompose(JOIN_SQL, replicated_registry)
        assert decomposed.fragments[0].signature == decomposed.fragments[0].sql

    def test_different_params_different_signatures(self, replicated_registry):
        a = decompose(JOIN_SQL, replicated_registry)
        b = decompose(JOIN_SQL.replace("5000", "6000"), replicated_registry)
        assert a.fragments[0].signature != b.fragments[0].signature
