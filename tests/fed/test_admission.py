"""Admission control: classes, token buckets, arrivals, shed evidence."""

import itertools
import math

import pytest

from repro.fed.admission import (
    AdmissionController,
    AdmissionDecision,
    BurstyArrivals,
    DEFAULT_CLASSES,
    PoissonArrivals,
    PriorityClass,
    TokenBucket,
    make_arrivals,
    parse_class_spec,
    shed_violations,
)


class TestPriorityClasses:
    def test_defaults_are_ordered_and_weighted(self):
        ranks = [spec.rank for spec in DEFAULT_CLASSES]
        assert ranks == sorted(ranks)
        assert sum(spec.weight for spec in DEFAULT_CLASSES) == pytest.approx(
            1.0
        )
        # Exactly the lowest class is budget/rate limited by default.
        limited = [
            spec for spec in DEFAULT_CLASSES if math.isfinite(spec.budget_ms)
        ]
        assert [spec.name for spec in limited] == ["batch"]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PriorityClass("x", rank=0, weight=-1.0)
        with pytest.raises(ValueError):
            PriorityClass("x", rank=0, budget_ms=0.0)
        with pytest.raises(ValueError):
            PriorityClass("x", rank=0, rate_qps=0.0)
        with pytest.raises(ValueError):
            PriorityClass("x", rank=0, burst=0.5)

    def test_parse_class_spec(self):
        classes = parse_class_spec(
            "gold=0.2:inf:inf,silver=0.5:3000:inf,batch=0.3:800:10:5"
        )
        assert [spec.name for spec in classes] == ["gold", "silver", "batch"]
        assert [spec.rank for spec in classes] == [0, 1, 2]
        assert classes[0].budget_ms == math.inf
        assert classes[1].budget_ms == 3000.0
        assert classes[2].rate_qps == 10.0 and classes[2].burst == 5.0

    @pytest.mark.parametrize(
        "spec", ["", "gold", "gold=0.2", "a=1:inf:inf,a=1:inf:inf"]
    )
    def test_parse_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            parse_class_spec(spec)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate_qps=10.0, burst=2.0, t0_ms=0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst exhausted
        # 10 q/s refills one token every 100 ms.
        assert not bucket.try_take(50.0)
        assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate_qps=1000.0, burst=3.0, t0_ms=0.0)
        assert bucket.available(60_000.0) == 3.0


class TestArrivals:
    @pytest.mark.parametrize("process", ["poisson", "bursty"])
    def test_same_seed_is_byte_identical(self, process):
        a = make_arrivals(process, 50.0, 7, "test").gaps()
        b = make_arrivals(process, 50.0, 7, "test").gaps()
        assert list(itertools.islice(a, 200)) == list(
            itertools.islice(b, 200)
        )

    def test_streams_with_different_paths_differ(self):
        a = make_arrivals("poisson", 50.0, 7, "one").gaps()
        b = make_arrivals("poisson", 50.0, 7, "two").gaps()
        assert list(itertools.islice(a, 20)) != list(
            itertools.islice(b, 20)
        )

    def test_poisson_mean_gap_matches_rate(self):
        gaps = itertools.islice(PoissonArrivals(40.0, 3).gaps(), 4000)
        gaps = list(gaps)
        assert sum(gaps) / len(gaps) == pytest.approx(25.0, rel=0.1)

    def test_bursty_long_run_rate_matches_and_clusters(self):
        process = BurstyArrivals(40.0, 3, on_ms=400.0, off_ms=600.0)
        gaps = list(itertools.islice(process.gaps(), 6000))
        # Long-run average rate is the nominal one...
        assert sum(gaps) / len(gaps) == pytest.approx(25.0, rel=0.15)
        # ...but arrivals cluster: within-burst gaps are much shorter
        # than the memoryless equivalent, so gap variance is higher.
        mean = sum(gaps) / len(gaps)
        variance = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        assert variance > 2.0 * mean**2  # Poisson would give ~= mean^2

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError):
            make_arrivals("lockstep", 10.0, 7)


class _StubQueue:
    def __init__(self, backlog):
        self._backlog = backlog

    def backlog_ms(self, t_ms):
        return self._backlog


class TestAdmissionController:
    def _controller(self, **backlogs):
        classes = (
            PriorityClass("gold", rank=0),
            PriorityClass(
                "batch",
                rank=1,
                budget_ms=100.0,
                rate_qps=10.0,
                burst=2.0,
            ),
        )
        sources = {
            name: _StubQueue(value) for name, value in backlogs.items()
        }
        return AdmissionController(classes, backlog_sources=sources)

    def test_predicted_sojourn_is_worst_remote_plus_ii(self):
        controller = self._controller(S1=40.0, S2=70.0, II=15.0)
        assert controller.predicted_sojourn_ms(0.0) == pytest.approx(85.0)

    def test_admits_with_headroom(self):
        controller = self._controller(S1=10.0, II=0.0)
        decision = controller.decide("batch", 0.0)
        assert decision.admitted and decision.reason == ""

    def test_sheds_over_budget_without_spending_a_token(self):
        controller = self._controller(S1=150.0, II=0.0)
        decision = controller.decide("batch", 0.0)
        assert not decision.admitted
        assert decision.reason == "budget-exhausted"
        # The doomed query must not have consumed a token: both burst
        # tokens are still there for the next (viable) arrival.
        assert controller._buckets["batch"].available(0.0) == 2.0

    def test_sheds_on_empty_bucket(self):
        controller = self._controller(S1=0.0, II=0.0)
        assert controller.decide("batch", 0.0).admitted
        assert controller.decide("batch", 0.0).admitted
        decision = controller.decide("batch", 0.0)
        assert not decision.admitted and decision.reason == "no-tokens"

    def test_unbudgeted_class_never_budget_sheds(self):
        controller = self._controller(S1=10_000.0, II=10_000.0)
        assert controller.decide("gold", 0.0).admitted

    def test_unknown_class_rejected(self):
        controller = self._controller()
        with pytest.raises(KeyError):
            controller.decide("platinum", 0.0)

    def test_lowest_class_is_max_rank(self):
        assert self._controller().lowest_class().name == "batch"

    def test_recorded_decisions_pass_the_audit(self):
        controller = self._controller(S1=150.0, II=0.0)
        controller.decide("gold", 0.0)
        controller.decide("batch", 0.0)  # budget shed
        assert shed_violations(controller.decisions) == []


class TestShedViolationsAudit:
    def _decision(self, **overrides):
        base = dict(
            klass="batch",
            t_ms=0.0,
            admitted=False,
            tokens_before=0.0,
            predicted_ms=500.0,
            budget_ms=100.0,
            reason="budget-exhausted",
        )
        base.update(overrides)
        return AdmissionDecision(**base)

    def test_legitimate_sheds_pass(self):
        assert shed_violations([self._decision()]) == []
        assert (
            shed_violations(
                [
                    self._decision(
                        predicted_ms=10.0, reason="no-tokens"
                    )
                ]
            )
            == []
        )

    def test_headroom_shed_is_flagged(self):
        flagged = shed_violations(
            [
                self._decision(
                    tokens_before=3.0,
                    predicted_ms=10.0,
                    reason="no-tokens",
                )
            ]
        )
        assert flagged and "headroom" in flagged[0]

    def test_unknown_reason_is_flagged(self):
        flagged = shed_violations([self._decision(reason="felt-like-it")])
        assert any("unknown reason" in message for message in flagged)

    def test_admitted_decisions_are_ignored(self):
        admitted = self._decision(
            admitted=True, tokens_before=5.0, predicted_ms=0.0, reason=""
        )
        assert shed_violations([admitted]) == []
