"""Unit tests for II-side merge planning."""

import pytest

from repro.fed import (
    EstimatedInput,
    NicknameRegistry,
    build_merge_plan,
    decompose,
    estimate_merge_cost,
)
from repro.fed.nicknames import FederationError
from repro.sqlengine import (
    Catalog,
    DEFAULT_COST_PARAMETERS,
    MaterializedInput,
    REFERENCE_PROFILE,
    rows_equal_unordered,
)
from repro.sqlengine.executor import execute_plan
from repro.sqlengine.storage import StorageManager


@pytest.fixture()
def split_registry(sample_databases):
    registry = NicknameRegistry()
    db = sample_databases["S1"]
    registry.register("orders", "S1", table_def=db.catalog.lookup("orders"))
    registry.register("lineitem", "S2", table_def=db.catalog.lookup("lineitem"))
    return registry


SQL = (
    "SELECT o.priority, COUNT(*) AS n FROM orders o "
    "JOIN lineitem l ON o.orderkey = l.orderkey "
    "WHERE o.totalprice > 5000 GROUP BY o.priority"
)


def _fragment_rows(sample_databases, decomposed):
    """Execute each fragment locally to produce realistic inputs."""
    db = sample_databases["S1"]
    inputs = {}
    for fragment in decomposed.fragments:
        rows = db.run(fragment.sql).rows
        inputs[fragment.fragment_id] = MaterializedInput(
            fragment.fragment_id, fragment.output_schema, rows
        )
    return inputs


class TestBuildMergePlan:
    def test_single_full_pushdown_is_identity(self, sample_databases):
        db = sample_databases["S1"]
        # both tables co-located -> single fragment
        registry = NicknameRegistry()
        for name in ("orders", "lineitem"):
            registry.register(name, "S1", table_def=db.catalog.lookup(name))
        decomposed = decompose(SQL, registry)
        leaf = MaterializedInput(
            "QF1", decomposed.fragments[0].output_schema, [(1, 2)]
        )
        assert build_merge_plan(decomposed, {"QF1": leaf}) is leaf

    def test_merge_matches_direct_execution(self, sample_databases, split_registry):
        decomposed = decompose(SQL, split_registry)
        assert len(decomposed.fragments) == 2
        inputs = _fragment_rows(sample_databases, decomposed)
        plan = build_merge_plan(decomposed, inputs)
        merged = execute_plan(plan, StorageManager(Catalog()))
        direct = sample_databases["S1"].run(SQL)
        assert rows_equal_unordered(merged.rows, direct.rows)

    def test_missing_input_rejected(self, split_registry):
        decomposed = decompose(SQL, split_registry)
        with pytest.raises(FederationError, match="missing input"):
            build_merge_plan(decomposed, {})

    def test_merge_uses_hash_join_on_cross_edge(self, split_registry, sample_databases):
        decomposed = decompose(SQL, split_registry)
        inputs = _fragment_rows(sample_databases, decomposed)
        plan = build_merge_plan(decomposed, inputs)
        assert "HashJoin" in plan.explain()


class TestEstimatedInput:
    def test_costing(self):
        from repro.sqlengine import Column, ColumnType, Schema
        from repro.sqlengine.cost import StatsContext
        from repro.sqlengine.physical import CostEstimator

        leaf = EstimatedInput(
            "x", Schema((Column("a", ColumnType.INT),)), 500.0
        )
        estimator = CostEstimator(
            DEFAULT_COST_PARAMETERS, REFERENCE_PROFILE, StatsContext({})
        )
        cost = leaf.estimate_cost(estimator)
        assert cost.rows == 500.0
        assert cost.total == 0.0

    def test_cannot_execute(self):
        from repro.sqlengine import Column, ColumnType, Schema

        leaf = EstimatedInput("x", Schema((Column("a", ColumnType.INT),)), 5.0)
        with pytest.raises(FederationError, match="compile-time only"):
            list(leaf.rows(None))


class TestEstimateMergeCost:
    def test_positive_and_scales_with_cardinality(self, split_registry):
        decomposed = decompose(SQL, split_registry)
        small = estimate_merge_cost(
            decomposed,
            {"QF1": 10.0, "QF2": 10.0},
            REFERENCE_PROFILE,
            DEFAULT_COST_PARAMETERS,
        )
        large = estimate_merge_cost(
            decomposed,
            {"QF1": 10_000.0, "QF2": 10_000.0},
            REFERENCE_PROFILE,
            DEFAULT_COST_PARAMETERS,
        )
        assert small.total > 0
        assert large.total > small.total
