"""Unit tests for the query patroller and explain table."""

import pytest

from repro.fed import QueryPatroller, QueryStatus
from repro.fed.explain import ExplainTable
from repro.fed.global_optimizer import GlobalPlan
from repro.sqlengine import PlanCost


class TestPatrollerLifecycle:
    def test_submit_complete(self):
        patroller = QueryPatroller()
        record = patroller.submit("SELECT 1", 100.0, label="QT1")
        assert record.query_id == 1
        assert record.status is QueryStatus.RUNNING
        patroller.complete(record, 150.0)
        assert record.status is QueryStatus.COMPLETED
        assert record.response_time_ms == 50.0

    def test_fail(self):
        patroller = QueryPatroller()
        record = patroller.submit("SELECT 1", 0.0)
        patroller.fail(record, 10.0, "boom", server="S1")
        assert record.status is QueryStatus.FAILED
        assert record.error == "boom"
        assert record.failed_servers == ["S1"]

    def test_note_server_failure_survivable(self):
        patroller = QueryPatroller()
        record = patroller.submit("SELECT 1", 0.0)
        patroller.note_server_failure(record, "S2")
        patroller.complete(record, 5.0)
        assert record.status is QueryStatus.COMPLETED
        assert record.failed_servers == ["S2"]

    def test_ids_increment(self):
        patroller = QueryPatroller()
        first = patroller.submit("a", 0.0)
        second = patroller.submit("b", 0.0)
        assert second.query_id == first.query_id + 1


class TestPatrollerAnalytics:
    def _patroller(self):
        patroller = QueryPatroller()
        for index, label in enumerate(["QT1", "QT1", "QT2"]):
            record = patroller.submit("q", 0.0, label=label)
            patroller.complete(record, float(10 * (index + 1)))
        failed = patroller.submit("q", 0.0, label="QT2")
        patroller.fail(failed, 5.0, "x")
        return patroller

    def test_mean_response(self):
        patroller = self._patroller()
        assert patroller.mean_response_ms() == pytest.approx(20.0)
        assert patroller.mean_response_ms("QT1") == pytest.approx(15.0)

    def test_label_filtering(self):
        patroller = self._patroller()
        assert len(patroller.records("QT2")) == 2
        assert len(patroller.completed("QT2")) == 1

    def test_failure_count(self):
        assert self._patroller().failure_count() == 1
        assert self._patroller().failure_count("QT1") == 0

    def test_mean_of_empty(self):
        assert QueryPatroller().mean_response_ms() == 0.0

    def test_len_and_iter(self):
        patroller = self._patroller()
        assert len(patroller) == 4
        assert len(list(patroller)) == 4


def _plan():
    return GlobalPlan(
        plan_id="p1",
        choices=(),
        merge_cost=PlanCost(0.0, 1.0, 1.0),
        total_cost=10.0,
    )


class TestExplainTable:
    def test_record_and_latest(self):
        table = ExplainTable()
        assert table.latest() is None
        record = table.record(1, "SELECT 1", 5.0, _plan())
        assert table.latest() is record
        assert record.estimated_total == 10.0

    def test_for_query(self):
        table = ExplainTable()
        table.record(1, "a", 0.0, _plan())
        table.record(2, "b", 0.0, _plan())
        table.record(1, "a", 1.0, _plan())
        assert len(table.for_query(1)) == 2
        assert len(table) == 3

    def test_only_winner_stored(self):
        """The explain table holds one plan per compile — the winner —
        exactly DB2 II's behaviour the paper works around (Section 4.2)."""
        table = ExplainTable()
        record = table.record(1, "q", 0.0, _plan())
        assert isinstance(record.plan, GlobalPlan)
        assert not hasattr(record, "alternatives")
