"""Unit tests for plan-selection routers."""

import pytest

from repro.fed import (
    CostBasedRouter,
    FederationError,
    FixedRouter,
    PreferredServerRouter,
    RoundRobinRouter,
)
from repro.fed.global_optimizer import GlobalPlan, FragmentOption
from repro.fed.decomposer import DecomposedQuery, QueryFragment
from repro.sqlengine import Column, ColumnType, PlanCost, Schema, SeqScan
from repro.sqlengine.catalog import TableDef, TableStats
from repro.sqlengine.logical import QueryBlock
from repro.sqlengine.parser import parse


def _fragment():
    return QueryFragment(
        fragment_id="QF1",
        sql="SELECT a FROM t",
        bindings=("t",),
        nicknames=("t",),
        candidate_servers=("S1", "S2", "S3"),
        output_schema=Schema((Column("a", ColumnType.INT, "t"),)),
        full_pushdown=True,
    )


def _plan(plan_id, server, total):
    table = TableDef(
        name="t",
        schema=Schema((Column("a", ColumnType.INT),)),
        stats=TableStats(row_count=1),
    )
    cost = PlanCost(1.0, total, 10.0)
    option = FragmentOption(
        fragment=_fragment(),
        server=server,
        plan=SeqScan(table, "t"),
        estimated=cost,
        calibrated=cost,
    )
    return GlobalPlan(
        plan_id=plan_id,
        choices=(option,),
        merge_cost=PlanCost(0.0, 0.0, 1.0),
        total_cost=total,
    )


def _decomposed():
    statement = parse("SELECT a FROM t")
    block = QueryBlock(
        relations={},
        join_edges=(),
        residual=None,
        items=(),
        output_schema=Schema(()),
    )
    return DecomposedQuery(
        statement=statement, block=block, fragments=(_fragment(),), cross_edges=()
    )


PLANS = [
    _plan("p1", "S3", 10.0),
    _plan("p2", "S1", 12.0),
    _plan("p3", "S2", 30.0),
]


class TestCostBasedRouter:
    def test_picks_cheapest(self):
        chosen = CostBasedRouter().choose(_decomposed(), PLANS)
        assert chosen.plan_id == "p1"

    def test_empty_raises(self):
        with pytest.raises(FederationError):
            CostBasedRouter().choose(_decomposed(), [])


class TestFixedRouter:
    def test_routes_by_label(self):
        router = FixedRouter({"QT1": "S1"})
        chosen = router.choose(_decomposed(), PLANS, label="QT1")
        assert chosen.servers == frozenset({"S1"})

    def test_falls_back_when_no_matching_plan(self):
        router = FixedRouter({"QT1": "S9"})
        chosen = router.choose(_decomposed(), PLANS, label="QT1")
        assert chosen.plan_id == "p1"

    def test_unmapped_label_uses_cheapest(self):
        router = FixedRouter({"QT1": "S1"})
        chosen = router.choose(_decomposed(), PLANS, label="QT7")
        assert chosen.plan_id == "p1"

    def test_picks_cheapest_on_assigned_server(self):
        plans = PLANS + [_plan("p4", "S1", 11.0)]
        router = FixedRouter({"QT1": "S1"})
        chosen = router.choose(_decomposed(), plans, label="QT1")
        assert chosen.total_cost == 11.0


class TestPreferredServerRouter:
    def test_prefers_server_even_if_costlier(self):
        router = PreferredServerRouter("S2")
        chosen = router.choose(_decomposed(), PLANS)
        assert chosen.servers == frozenset({"S2"})

    def test_falls_back_if_absent(self):
        router = PreferredServerRouter("S9")
        assert router.choose(_decomposed(), PLANS).plan_id == "p1"


class TestRoundRobinRouter:
    def test_rotates_across_server_sets(self):
        router = RoundRobinRouter()
        decomposed = _decomposed()
        servers = [
            next(iter(router.choose(decomposed, PLANS).servers))
            for _ in range(6)
        ]
        assert servers[:3] == ["S1", "S2", "S3"]  # sorted rotation order
        assert servers[3:] == servers[:3]

    def test_rotation_keyed_per_statement(self):
        router = RoundRobinRouter()
        first = router.choose(_decomposed(), PLANS)
        second = router.choose(_decomposed(), PLANS)
        assert first.servers != second.servers
