"""Tests for the epoch-invalidated compiled-plan cache."""

import pytest

from repro.core import CalibrationEpoch
from repro.fed import (
    InformationIntegrator,
    PlanCache,
    ReplicaManager,
    plan_key,
)
from repro.harness import build_federation
from repro.workload import TEST_SCALE

SQL = (
    "SELECT o.priority, COUNT(*) AS n FROM orders o "
    "JOIN lineitem l ON o.orderkey = l.orderkey "
    "WHERE o.totalprice > 5000 GROUP BY o.priority"
)
SINGLE = "SELECT COUNT(*) FROM supplier"


@pytest.fixture()
def deployment(sample_databases):
    return build_federation(
        scale=TEST_SCALE, prebuilt_databases=sample_databases
    )


@pytest.fixture()
def plain_deployment(sample_databases):
    return build_federation(
        scale=TEST_SCALE, with_qcc=False, prebuilt_databases=sample_databases
    )


class TestPlanCacheUnit:
    """Direct cache mechanics; entries hold opaque sentinels."""

    def _cache(self, maxsize=8):
        epoch = CalibrationEpoch()
        return PlanCache(epoch, maxsize=maxsize), epoch

    def test_miss_then_hit(self):
        cache, _ = self._cache()
        key = plan_key("q1")
        assert cache.get(key, 0.0) is None
        cache.put(key, "decomposed", ["plan"], 0.0)
        entry = cache.get(key, 1.0)
        assert entry is not None
        assert entry.plans == ("plan",)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_epoch_bump_invalidates(self):
        cache, epoch = self._cache()
        key = plan_key("q1")
        cache.put(key, "d", ["p"], 0.0)
        epoch.bump()
        assert cache.get(key, 1.0) is None
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_freshness_horizon_expires_entry(self):
        cache, _ = self._cache()
        key = plan_key("q1", staleness_tolerance_ms=500.0)
        cache.put(key, "d", ["p"], 100.0, valid_until_ms=600.0)
        assert cache.get(key, 599.0) is not None
        assert cache.get(key, 600.0) is None
        assert cache.invalidations == 1

    def test_lru_eviction_order(self):
        cache, _ = self._cache(maxsize=2)
        cache.put(plan_key("a"), "d", ["p"], 0.0)
        cache.put(plan_key("b"), "d", ["p"], 0.0)
        cache.get(plan_key("a"), 1.0)  # refresh a's recency
        cache.put(plan_key("c"), "d", ["p"], 2.0)  # evicts b
        assert cache.get(plan_key("a"), 3.0) is not None
        assert cache.get(plan_key("b"), 3.0) is None
        assert cache.get(plan_key("c"), 3.0) is not None
        assert cache.evictions == 1

    def test_clear_counts_invalidations(self):
        cache, _ = self._cache()
        cache.put(plan_key("a"), "d", ["p"], 0.0)
        cache.put(plan_key("b"), "d", ["p"], 0.0)
        assert cache.clear() == 2
        assert cache.invalidations == 2
        assert len(cache) == 0

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            PlanCache(CalibrationEpoch(), maxsize=0)

    def test_stats_snapshot(self):
        cache, epoch = self._cache()
        cache.put(plan_key("a"), "d", ["p"], 0.0)
        cache.get(plan_key("a"), 1.0)
        epoch.bump()
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["epoch"] == 1
        assert stats["hits"] == 1

    def test_plan_key_normalises(self):
        assert plan_key("q") == plan_key("q", set())
        assert plan_key("q", {"S1", "S2"}) == plan_key("q", {"S2", "S1"})
        assert plan_key("q") != plan_key("q", staleness_tolerance_ms=1.0)
        assert plan_key("q") != plan_key("q", {"S1"})


class TestIntegratorCaching:
    def test_repeat_compile_hits_and_matches(self, deployment):
        integrator = deployment.integrator
        _, first = integrator.compile(SQL)
        _, second = integrator.compile(SQL)
        assert integrator.plan_cache.hits == 1
        assert [p.describe() for p in first] == [
            p.describe() for p in second
        ]

    def test_recalibration_invalidates(self, deployment):
        integrator = deployment.integrator
        integrator.compile(SQL)
        deployment.qcc.recalibrate(deployment.clock.now)
        integrator.compile(SQL)
        assert integrator.plan_cache.hits == 0
        assert integrator.plan_cache.misses == 2
        assert integrator.plan_cache.invalidations == 1

    def test_availability_flip_invalidates(self, deployment):
        integrator = deployment.integrator
        _, before = integrator.compile(SQL)
        assert any("S3" in p.servers for p in before)
        deployment.qcc.record_error("S3", deployment.clock.now)
        _, after = integrator.compile(SQL)
        assert integrator.plan_cache.hits == 0
        assert all("S3" not in p.servers for p in after)

    def test_topology_change_invalidates(self, plain_deployment):
        integrator = plain_deployment.integrator
        integrator.compile(SQL)
        epoch_before = integrator.calibration_epoch.value
        table = plain_deployment.servers["S1"].database.catalog.lookup(
            "supplier"
        )
        plain_deployment.registry.register(
            "supplier_copy", "S1", "supplier", table_def=table
        )
        assert integrator.calibration_epoch.value > epoch_before
        integrator.compile(SQL)
        assert integrator.plan_cache.hits == 0

    def test_submit_path_reuses_compilation(self, plain_deployment):
        integrator = plain_deployment.integrator
        integrator.submit(SQL)
        integrator.submit(SQL)
        assert integrator.plan_cache.hits == 1

    def test_cache_can_be_disabled(self, sample_databases):
        deployment = build_federation(
            scale=TEST_SCALE,
            prebuilt_databases=sample_databases,
            enable_plan_cache=False,
        )
        assert deployment.integrator.plan_cache is None
        result = deployment.integrator.submit(SINGLE)
        assert result.row_count == 1

    def test_custom_qcc_without_epoch_disables_cache(self, plain_deployment):
        class OpaqueQcc:
            def attach(self, *args, **kwargs):
                pass

        integrator = InformationIntegrator(
            registry=plain_deployment.registry,
            meta_wrapper=plain_deployment.meta_wrapper,
            clock=plain_deployment.clock,
            qcc=OpaqueQcc(),
        )
        assert integrator.plan_cache is None


class TestReplicaFreshnessHorizon:
    @pytest.fixture()
    def replicated(self, plain_deployment):
        manager = ReplicaManager(plain_deployment.registry)
        plain_deployment.integrator.replica_manager = manager
        return plain_deployment, manager

    def test_write_invalidates_tolerant_compilation(self, replicated):
        deployment, manager = replicated
        integrator = deployment.integrator
        integrator.compile(SINGLE, t_ms=0.0, staleness_tolerance_ms=500.0)
        manager.note_write("supplier", 100.0)
        integrator.compile(SINGLE, t_ms=200.0, staleness_tolerance_ms=500.0)
        assert integrator.plan_cache.hits == 0
        assert integrator.plan_cache.invalidations == 1

    def test_entry_expires_when_replicas_cross_tolerance(self, replicated):
        deployment, manager = replicated
        integrator = deployment.integrator
        manager.note_write("supplier", 100.0)
        # Compiled at t=200 with 500ms tolerance: replicas are 100ms
        # stale, still fresh, but will cross the tolerance at t=600.
        _, fresh_plans = integrator.compile(
            SINGLE, t_ms=200.0, staleness_tolerance_ms=500.0
        )
        assert any(
            server != "S1" for p in fresh_plans for server in p.servers
        )
        integrator.compile(SINGLE, t_ms=400.0, staleness_tolerance_ms=500.0)
        assert integrator.plan_cache.hits == 1
        _, late_plans = integrator.compile(
            SINGLE, t_ms=601.0, staleness_tolerance_ms=500.0
        )
        assert integrator.plan_cache.hits == 1  # horizon expired the entry
        assert all(p.servers == frozenset({"S1"}) for p in late_plans)

    def test_sync_invalidates(self, replicated):
        deployment, manager = replicated
        integrator = deployment.integrator
        manager.note_write("supplier", 100.0)
        integrator.compile(SINGLE, t_ms=700.0, staleness_tolerance_ms=500.0)
        manager.sync("supplier", "S2", deployment.servers, 800.0)
        _, plans = integrator.compile(
            SINGLE, t_ms=900.0, staleness_tolerance_ms=500.0
        )
        assert integrator.plan_cache.hits == 0
        assert any("S2" in p.servers for p in plans)

    def test_attach_after_construction_clears_cache(self, plain_deployment):
        integrator = plain_deployment.integrator
        integrator.compile(SINGLE)
        assert len(integrator.plan_cache) == 1
        integrator.replica_manager = ReplicaManager(
            plain_deployment.registry
        )
        assert len(integrator.plan_cache) == 0
