"""Tests for long-running cursors with mid-query source switching."""

import pytest

from repro.fed import FederatedCursor, FederationError
from repro.harness import build_federation
from repro.workload import TEST_SCALE

SQL = (
    "SELECT o.orderkey, o.totalprice FROM orders o "
    "WHERE o.totalprice > 2000"
)


@pytest.fixture()
def deployment(sample_databases):
    return build_federation(
        scale=TEST_SCALE, prebuilt_databases=sample_databases
    )


class TestValidation:
    def test_rejects_aggregates(self, deployment):
        with pytest.raises(FederationError, match="aggregated"):
            FederatedCursor(
                deployment.integrator,
                "SELECT COUNT(*) AS n FROM orders GROUP BY priority",
                key_column="orderkey",
            )

    def test_rejects_distinct(self, deployment):
        with pytest.raises(FederationError, match="DISTINCT"):
            FederatedCursor(
                deployment.integrator,
                "SELECT DISTINCT orderkey FROM orders",
                key_column="orderkey",
            )

    def test_rejects_own_order_by(self, deployment):
        with pytest.raises(FederationError, match="imposes its own"):
            FederatedCursor(
                deployment.integrator,
                "SELECT orderkey FROM orders ORDER BY orderkey",
                key_column="orderkey",
            )

    def test_rejects_select_star(self, deployment):
        with pytest.raises(FederationError, match="explicit select list"):
            FederatedCursor(
                deployment.integrator,
                "SELECT * FROM orders",
                key_column="orderkey",
            )

    def test_key_must_be_projected(self, deployment):
        with pytest.raises(FederationError, match="select list"):
            FederatedCursor(
                deployment.integrator,
                "SELECT totalprice FROM orders",
                key_column="orderkey",
            )

    def test_invalid_batch_size(self, deployment):
        with pytest.raises(ValueError):
            FederatedCursor(
                deployment.integrator, SQL, key_column="o.orderkey",
                batch_size=0,
            )


class TestCorrectness:
    def test_batches_reassemble_full_result(
        self, deployment, sample_databases
    ):
        cursor = FederatedCursor(
            deployment.integrator, SQL, key_column="o.orderkey",
            batch_size=100,
        )
        streamed = list(cursor)
        direct = sample_databases["S1"].run(
            SQL + " ORDER BY o.orderkey"
        )
        assert streamed == direct.rows
        assert cursor.exhausted
        assert len(cursor.batches) >= 2  # genuinely batched

    def test_no_duplicates_and_ordered(self, deployment):
        cursor = FederatedCursor(
            deployment.integrator, SQL, key_column="o.orderkey",
            batch_size=75,
        )
        keys = [row[0] for row in cursor]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))

    def test_empty_result(self, deployment):
        cursor = FederatedCursor(
            deployment.integrator,
            "SELECT o.orderkey FROM orders o WHERE o.totalprice > 1000000",
            key_column="o.orderkey",
        )
        assert list(cursor) == []
        assert cursor.exhausted

    def test_batch_bookkeeping(self, deployment):
        cursor = FederatedCursor(
            deployment.integrator, SQL, key_column="o.orderkey",
            batch_size=100,
        )
        list(cursor)
        assert cursor.total_response_ms > 0
        for index, batch in enumerate(cursor.batches):
            assert batch.index == index
            assert batch.servers


class TestMidQuerySwitching:
    def test_routing_recheck_between_batches(self):
        """A load spike between batches moves the remaining batches to a
        different server — with no duplicates (the paper's §6 open
        question, answered by keyset pagination)."""
        from repro.harness import ServerSpec

        # S3 is fastest but collapses under load; links identical so the
        # crossover is decisive at test scale.
        specs = tuple(
            ServerSpec(
                name, cpu_speed=speed, io_speed=speed,
                cpu_sensitivity=sens, io_sensitivity=sens,
                latency_ms=2.0, bandwidth_mbps=100.0,
            )
            for name, speed, sens in (
                ("S1", 1.0, 0.05),
                ("S2", 1.0, 0.05),
                ("S3", 2.0, 0.99),
            )
        )
        deployment = build_federation(specs=specs, scale=TEST_SCALE)
        cursor = FederatedCursor(
            deployment.integrator, SQL, key_column="o.orderkey",
            batch_size=60,
        )
        first = cursor.fetch_batch()
        assert first
        first_servers = cursor.batches[0].servers

        # Spike the chosen server and let QCC observe + recalibrate.
        spiked = first_servers[0]
        deployment.set_load({spiked: 0.94})
        deployment.clock.advance(3_000.0)
        deployment.qcc.probe_servers(deployment.clock.now)
        deployment.qcc.recalibrate(deployment.clock.now)

        keys = [row[0] for row in first]
        while True:
            batch = cursor.fetch_batch()
            if not batch:
                break
            keys.extend(row[0] for row in batch)

        later_servers = {
            server for b in cursor.batches[1:] for server in b.servers
        }
        assert later_servers and spiked not in later_servers
        # Switching cost nothing in correctness.
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))
        assert len(cursor.servers_used()) >= 2
