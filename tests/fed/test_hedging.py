"""Hedged fragment dispatch: policy unit tests + runtime equivalence.

The contract under test has two halves.  *Disabled* (``hedge_after_ms is
None``) the concurrent runtime must be bit-identical to the pre-hedging
dispatch path — same rows, same times, same calibrator feedback.
*Enabled*, results stay correct (backup replicas return the same rows)
and the whole run remains a pure function of the seed.
"""

import pytest

from repro.fed import ConcurrentRuntime, HedgeConfig, HedgePolicy, make_policy
from repro.harness import build_replica_federation
from repro.workload import TEST_SCALE, build_workload


@pytest.fixture(scope="module")
def replica_databases():
    """Loaded S1/R1/S2/R2 databases, shared across this module."""
    deployment = build_replica_federation(
        scale=TEST_SCALE, seed=7, with_qcc=False
    )
    return {
        name: server.database
        for name, server in deployment.servers.items()
    }


@pytest.fixture()
def make_deployment(replica_databases):
    def factory():
        return build_replica_federation(
            scale=TEST_SCALE, seed=7, prebuilt_databases=replica_databases
        )

    return factory


def _drive(deployment, hedge_after_ms, depth_cap=4, spacing_ms=1.0):
    runtime = ConcurrentRuntime(
        deployment.integrator,
        hedge_after_ms=hedge_after_ms,
        hedge_depth_cap=depth_cap,
    )
    handles = [
        runtime.submit_at(index * spacing_ms, instance.sql, klass="gold")
        for index, instance in enumerate(
            build_workload(instances_per_type=2)
        )
    ]
    runtime.run()
    return runtime, handles


def _observables(handles):
    rows = []
    for handle in handles:
        result = handle.result
        assert result is not None, handle.error
        rows.append(
            (
                tuple(result.rows),
                result.response_ms,
                result.remote_ms,
                result.merge_ms,
                result.retries,
                result.plan.servers,
            )
        )
    return rows


class TestHedgePolicy:
    def test_static_fallback_until_min_samples(self):
        policy = HedgePolicy(
            HedgeConfig(static_after_ms=50.0, min_samples=4)
        )
        for latency in (1.0, 2.0, 3.0):
            policy.observe("sig", latency)
        assert policy.hedge_after("sig") == 50.0
        policy.observe("sig", 4.0)
        assert policy.hedge_after("sig") != 50.0

    def test_quantile_takeover_tracks_tail(self):
        policy = HedgePolicy(
            HedgeConfig(static_after_ms=50.0, min_samples=8, quantile=0.95)
        )
        # 19 fast observations and one 100ms straggler: p95 of the
        # sorted window lands on the straggler.
        for _ in range(19):
            policy.observe("sig", 10.0)
        policy.observe("sig", 100.0)
        assert policy.hedge_after("sig") == 100.0
        # An unknown signature still gets the static fallback.
        assert policy.hedge_after("other") == 50.0

    def test_window_is_sliding(self):
        policy = HedgePolicy(
            HedgeConfig(static_after_ms=50.0, min_samples=2, window=4)
        )
        for latency in (100.0, 100.0, 1.0, 1.0, 1.0, 1.0):
            policy.observe("sig", latency)
        # The two 100ms samples have slid out of the 4-wide window.
        assert policy.hedge_after("sig") == 1.0

    def test_history_is_lru_bounded(self):
        policy = HedgePolicy(
            HedgeConfig(static_after_ms=50.0, max_tracked=8)
        )
        for index in range(32):
            policy.observe(f"sig-{index}", 1.0)
        assert len(policy._history) <= 8
        # The most recent signatures survive, the oldest are evicted.
        assert policy.samples("sig-31") == 1
        assert policy.samples("sig-0") == 0

    def test_depth_cap_gates_backup(self):
        policy = HedgePolicy(
            HedgeConfig(static_after_ms=50.0, depth_cap=2)
        )
        assert policy.allow_backup(0)
        assert policy.allow_backup(2)
        assert not policy.allow_backup(3)

    def test_outcome_bookkeeping(self):
        policy = HedgePolicy(HedgeConfig(static_after_ms=50.0))
        policy.note_outcome(hedged=False, winner="primary", wasted_ms=0.0)
        assert policy.fired == 0
        policy.note_outcome(hedged=True, winner="backup", wasted_ms=3.0)
        policy.note_outcome(hedged=True, winner="primary", wasted_ms=2.0)
        assert policy.fired == 2
        assert policy.backup_wins == 1
        assert policy.primary_wins == 1
        assert policy.wasted_ms == pytest.approx(5.0)

    def test_make_policy_none_disables(self):
        assert make_policy(None) is None
        policy = make_policy(25.0, depth_cap=7)
        assert policy is not None
        assert policy.config.static_after_ms == 25.0
        assert policy.config.depth_cap == 7

    def test_rejects_invalid_configuration(self):
        with pytest.raises(ValueError):
            HedgeConfig(static_after_ms=-1.0)
        with pytest.raises(ValueError):
            HedgeConfig(static_after_ms=1.0, quantile=0.0)


class TestDisabledEquivalence:
    def test_disabled_matches_plain_runtime_bit_for_bit(
        self, make_deployment
    ):
        plain_runtime, plain = _drive(make_deployment(), None)
        assert plain_runtime.hedging is None

        # hedge_after_ms=None must take the *identical* dispatch path:
        # every observable, including float residue, matches.
        _, disabled = _drive(make_deployment(), hedge_after_ms=None)
        assert _observables(disabled) == _observables(plain)

    def test_unreachable_timeout_matches_disabled(self, make_deployment):
        """A hedge timer that never fires changes nothing: rows and
        routing match the disabled run exactly (scheduling floats may
        carry residue from the wrapped dispatch path, rows may not)."""
        _, disabled = _drive(make_deployment(), None)
        runtime, armed = _drive(make_deployment(), hedge_after_ms=1e9)
        assert runtime.hedging is not None
        assert runtime.hedging.fired == 0
        for lazy, eager in zip(
            _observables(armed), _observables(disabled)
        ):
            assert lazy[0] == eager[0]  # rows
            assert lazy[5] == eager[5]  # chosen servers

    def test_disabled_calibrator_feedback_identical(self, make_deployment):
        plain_dep = make_deployment()
        _drive(plain_dep, None)
        disabled_dep = make_deployment()
        _drive(disabled_dep, hedge_after_ms=None)
        key = lambda e: (  # noqa: E731
            e.server, e.fragment_signature, e.observed_ms, e.estimated_total
        )
        assert list(map(key, plain_dep.meta_wrapper.runtime_log)) == list(
            map(key, disabled_dep.meta_wrapper.runtime_log)
        )


class TestHedgedRuns:
    def test_aggressive_hedging_preserves_rows(self, make_deployment):
        """hedge_after_ms=1 fires backups constantly; every query must
        still return exactly the rows of the unhedged run."""
        _, plain = _drive(make_deployment(), None)
        runtime, hedged = _drive(make_deployment(), hedge_after_ms=1.0)
        assert runtime.hedging is not None
        assert runtime.hedging.fired > 0
        for hedged_obs, plain_obs in zip(
            _observables(hedged), _observables(plain)
        ):
            assert hedged_obs[0] == plain_obs[0]

    def test_hedged_run_is_deterministic(self, make_deployment):
        first_rt, first = _drive(make_deployment(), hedge_after_ms=1.0)
        second_rt, second = _drive(make_deployment(), hedge_after_ms=1.0)
        assert _observables(first) == _observables(second)
        assert first_rt.hedging.fired == second_rt.hedging.fired
        assert first_rt.hedging.backup_wins == second_rt.hedging.backup_wins
        assert (
            first_rt.hedging.wasted_ms == second_rt.hedging.wasted_ms
        )

    def test_only_winner_reaches_runtime_log(self, make_deployment):
        """Cancelled losers must not feed the calibrator: the runtime
        log carries exactly one execution per fragment dispatch, and
        every loser shows up in the hedge-cancelled counter instead."""
        deployment = make_deployment()
        runtime, handles = _drive(deployment, hedge_after_ms=1.0)
        policy = runtime.hedging
        assert policy.fired > 0

        fragments = 0
        for handle in handles:
            result = handle.result
            assert result is not None
            fragments += len(result.plan.servers)
        assert len(deployment.meta_wrapper.runtime_log) == fragments

    def test_depth_cap_zero_suppresses_every_backup(self, make_deployment):
        """depth_cap=0 refuses any backup whose queue holds even one
        in-flight job; under overlapping load that suppresses hedges
        that a permissive cap would fire."""
        permissive_rt, _ = _drive(
            make_deployment(), hedge_after_ms=1.0, depth_cap=100
        )
        strict_rt, handles = _drive(
            make_deployment(), hedge_after_ms=1.0, depth_cap=0
        )
        assert strict_rt.hedging.suppressed >= permissive_rt.hedging.suppressed
        for handle in handles:  # suppression never breaks a query
            assert handle.result is not None, handle.error
