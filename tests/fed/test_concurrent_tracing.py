"""Causal span trees from the concurrent runtime.

Satellite guarantees under test: span trees are well-nested and
per-trace disjoint under concurrency, queue_wait + service equals the
scheduler's sojourn bit-for-bit, every completed query's decomposition
recombines to exactly its recorded response time (fifo and ps alike),
and hedge races leave the winner's tags plus the loser's cancelled
slice on the winning trace and in the Chrome export.
"""

import json

import pytest

import repro.obs as obs
from repro.fed import ConcurrentRuntime
from repro.harness import build_replica_federation
from repro.harness.loadgen import run_loadgen
from repro.obs import decompose_trace
from repro.obs.export import chrome_trace_events
from repro.workload import TEST_SCALE, build_workload


@pytest.fixture(params=["fifo", "ps"])
def traced_overload(request, sample_databases):
    """One 2x-overload traced run per queue discipline."""
    obs.configure(metrics=True, tracing=True, log_level=None)
    try:
        yield run_loadgen(
            rate_qps=80.0,
            duration_ms=1_500.0,
            seed=11,
            discipline=request.param,
            prebuilt_databases=sample_databases,
        )
    finally:
        obs.disable()


def _walk(span):
    yield span
    for child in span.children:
        yield from _walk(child)


class TestSpanTreeIntegrity:
    def test_every_outcome_gets_a_trace_with_one_root(self, traced_overload):
        assert traced_overload.handles
        for handle in traced_overload.handles:
            assert handle.trace is not None, handle.status
            roots = [s for s in handle.trace.spans if s.name == "query"]
            assert len(roots) == 1
            assert roots[0].attributes["status"] == handle.status

    def test_spans_are_closed_and_well_nested(self, traced_overload):
        for handle in traced_overload.handles:
            for root in handle.trace.spans:
                for span in _walk(root):
                    assert span.end_ms is not None, span.name
                    assert span.end_ms >= span.start_ms, span.name
                    for child in span.children:
                        assert child.start_ms >= span.start_ms, child.name
                        assert child.end_ms <= span.end_ms, child.name

    def test_traces_share_no_span_objects(self, traced_overload):
        seen = {}
        for handle in traced_overload.handles:
            for root in handle.trace.spans:
                for span in _walk(root):
                    owner = seen.setdefault(id(span), handle.index)
                    assert owner == handle.index, (
                        "span object shared across traces"
                    )

    def test_queue_wait_plus_service_is_sojourn_bit_for_bit(
        self, traced_overload
    ):
        checked = 0
        for handle in traced_overload.handles:
            for dispatch in handle.trace.find("dispatch"):
                if "sojourn_ms" not in dispatch.attributes:
                    continue
                waits = [
                    c for c in dispatch.children if c.name == "queue_wait"
                ]
                services = [
                    c
                    for c in dispatch.children
                    if c.name == "service"
                    and not c.attributes.get("cancelled")
                ]
                assert len(waits) == 1 and len(services) == 1
                assert (
                    waits[0].attributes["wait_ms"]
                    + services[0].attributes["service_ms"]
                    == dispatch.attributes["sojourn_ms"]
                )
                # And the span boundaries tile the sojourn interval.
                assert waits[0].end_ms == services[0].start_ms
                checked += 1
        assert checked >= len(traced_overload.completed)

    def test_decomposition_recombines_to_response_exactly(
        self, traced_overload
    ):
        assert traced_overload.completed
        for handle in traced_overload.handles:
            out = decompose_trace(handle.trace)
            if handle.status != "completed":
                assert out["status"] == handle.status
                continue
            assert out["exact"] is True
            assert out["total_ms"] == handle.result.response_ms
            assert out["response_ms"] == handle.result.response_ms

    def test_shed_queries_carry_admission_evidence(self, traced_overload):
        assert traced_overload.sheds
        for handle in traced_overload.handles:
            if handle.status != "shed":
                continue
            (admission,) = handle.trace.find("admission")
            assert admission.attributes["admitted"] is False
            assert admission.attributes["reason"] in (
                "no-tokens",
                "over-budget",
            )
            assert "tokens_before" in admission.attributes


@pytest.fixture(scope="module")
def hedged_run():
    """A traced replica-federation run hot enough to fire hedges."""
    deployment = build_replica_federation(scale=TEST_SCALE, seed=7)
    obs.configure(metrics=True, tracing=True, log_level=None)
    try:
        runtime = ConcurrentRuntime(
            deployment.integrator, hedge_after_ms=1.0
        )
        handles = [
            runtime.submit_at(index * 1.0, instance.sql, klass="gold")
            for index, instance in enumerate(
                build_workload(instances_per_type=2)
            )
        ]
        runtime.run()
        yield runtime, handles
    finally:
        obs.disable()


class TestHedgeTracing:
    def test_winning_trace_carries_hedge_outcome_tags(self, hedged_run):
        runtime, handles = hedged_run
        assert runtime.hedging.fired > 0
        tagged = [
            d
            for h in handles
            for d in h.trace.find("dispatch")
            if d.attributes.get("hedge_fired")
        ]
        assert len(tagged) == runtime.hedging.fired
        backup_wins = 0
        for dispatch in tagged:
            assert dispatch.attributes["hedge_winner"] in (
                "primary",
                "backup",
            )
            assert dispatch.attributes["hedge_wasted_ms"] >= 0.0
            if dispatch.attributes["backup_wins"]:
                backup_wins += 1
        assert backup_wins == runtime.hedging.backup_wins

    def test_hedge_backup_span_nests_the_race(self, hedged_run):
        runtime, handles = hedged_run
        spans = [
            s for h in handles for s in h.trace.find("hedge_backup")
        ]
        assert len(spans) == runtime.hedging.fired
        for span in spans:
            assert span.attributes["winner"] in ("primary", "backup")
            assert span.attributes["server"] != span.attributes["primary"]
            assert span.attributes["fired_ms"] == span.start_ms

    def test_loser_survives_as_cancelled_slice(self, hedged_run):
        runtime, handles = hedged_run
        cancelled = [
            s
            for h in handles
            for name in ("queue_wait", "service")
            for s in h.trace.find(name)
            if s.attributes.get("cancelled")
        ]
        # Every settled race cancels its loser's queue lifecycle (the
        # loser may have been waiting, serving, or both).
        assert cancelled
        for span in cancelled:
            assert span.end_ms is not None

    def test_chrome_export_renders_cancelled_slices_grey(self, hedged_run):
        _, handles = hedged_run
        trace_file = chrome_trace_events([h.trace for h in handles])
        cancelled = [
            e
            for e in trace_file["traceEvents"]
            if e.get("ph") == "X" and "(cancelled)" in e.get("name", "")
        ]
        assert cancelled
        for event in cancelled:
            assert event["cname"] == "grey"
        # The export stays plain-JSON serialisable.
        json.dumps(trace_file)

    def test_decomposition_stays_exact_under_hedging(self, hedged_run):
        _, handles = hedged_run
        for handle in handles:
            assert handle.result is not None
            out = decompose_trace(handle.trace)
            assert out["exact"] is True
            assert out["total_ms"] == handle.result.response_ms
