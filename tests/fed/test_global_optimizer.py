"""Unit tests for global plan enumeration, dominance and clustering."""

import math

import pytest

from repro.fed import (
    FederationError,
    NicknameRegistry,
    cluster_near_cost,
    decompose,
    eliminate_dominated,
    enumerate_global_plans,
)
from repro.fed.global_optimizer import FragmentOption
from repro.sqlengine import (
    DEFAULT_COST_PARAMETERS,
    PlanCost,
    REFERENCE_PROFILE,
    SeqScan,
)


@pytest.fixture()
def q6_setup(sample_databases):
    """The Section 4 scenario: two fragments, two candidate servers each."""
    registry = NicknameRegistry()
    db = sample_databases["S1"]
    registry.register("orders", "S1", table_def=db.catalog.lookup("orders"))
    registry.register("orders", "R1")
    registry.register("lineitem", "S2", table_def=db.catalog.lookup("lineitem"))
    registry.register("lineitem", "R2")
    sql = (
        "SELECT o.priority, COUNT(*) AS n FROM orders o "
        "JOIN lineitem l ON o.orderkey = l.orderkey GROUP BY o.priority"
    )
    decomposed = decompose(sql, registry)
    db_table = db.catalog.lookup("orders")
    line_table = db.catalog.lookup("lineitem")

    def option(fragment, server, total, rows=100.0, plan_table=None):
        plan = SeqScan(plan_table or db_table, fragment.bindings[0])
        cost = PlanCost(first_tuple=1.0, total=total, rows=rows)
        return FragmentOption(
            fragment=fragment,
            server=server,
            plan=plan,
            estimated=cost,
            calibrated=cost,
        )

    qf1, qf2 = decomposed.fragments
    options = {
        qf1.fragment_id: [
            option(qf1, "S1", 10.0),
            option(qf1, "S1", 14.0),
            option(qf1, "R1", 11.0),
        ],
        qf2.fragment_id: [
            option(qf2, "S2", 20.0, plan_table=line_table),
            option(qf2, "S2", 25.0, plan_table=line_table),
            option(qf2, "R2", 21.0, plan_table=line_table),
        ],
    }
    return decomposed, options


class TestEnumeration:
    def test_nine_combinations(self, q6_setup):
        decomposed, options = q6_setup
        plans = enumerate_global_plans(
            decomposed, options, REFERENCE_PROFILE, DEFAULT_COST_PARAMETERS
        )
        # 3 x 3 = 9 combinations, all retained (keep=16 default)
        assert len(plans) == 9

    def test_sorted_and_ids_assigned(self, q6_setup):
        decomposed, options = q6_setup
        plans = enumerate_global_plans(
            decomposed, options, REFERENCE_PROFILE, DEFAULT_COST_PARAMETERS
        )
        totals = [p.total_cost for p in plans]
        assert totals == sorted(totals)
        assert [p.plan_id for p in plans] == [f"p{i+1}" for i in range(9)]

    def test_total_is_max_fragment_plus_merge(self, q6_setup):
        decomposed, options = q6_setup
        plans = enumerate_global_plans(
            decomposed, options, REFERENCE_PROFILE, DEFAULT_COST_PARAMETERS
        )
        best = plans[0]
        fragment_max = max(c.calibrated.total for c in best.choices)
        assert best.total_cost == pytest.approx(
            fragment_max + best.merge_cost.total
        )

    def test_ii_factor_scales_merge(self, q6_setup):
        decomposed, options = q6_setup
        base = enumerate_global_plans(
            decomposed, options, REFERENCE_PROFILE, DEFAULT_COST_PARAMETERS
        )[0]
        inflated = enumerate_global_plans(
            decomposed,
            options,
            REFERENCE_PROFILE,
            DEFAULT_COST_PARAMETERS,
            ii_calibration_factor=3.0,
        )[0]
        assert inflated.total_cost > base.total_cost

    def test_infinite_options_dropped(self, q6_setup):
        decomposed, options = q6_setup
        qf1 = decomposed.fragments[0]
        bad = options[qf1.fragment_id][0]
        options[qf1.fragment_id][0] = FragmentOption(
            fragment=bad.fragment,
            server=bad.server,
            plan=bad.plan,
            estimated=bad.estimated,
            calibrated=PlanCost(math.inf, math.inf, 0.0),
        )
        plans = enumerate_global_plans(
            decomposed, options, REFERENCE_PROFILE, DEFAULT_COST_PARAMETERS
        )
        assert all(math.isfinite(p.total_cost) for p in plans)

    def test_no_viable_option_raises(self, q6_setup):
        decomposed, options = q6_setup
        qf1 = decomposed.fragments[0]
        options[qf1.fragment_id] = []
        with pytest.raises(FederationError, match="no viable server"):
            enumerate_global_plans(
                decomposed, options, REFERENCE_PROFILE, DEFAULT_COST_PARAMETERS
            )

    def test_choice_lookup(self, q6_setup):
        decomposed, options = q6_setup
        plan = enumerate_global_plans(
            decomposed, options, REFERENCE_PROFILE, DEFAULT_COST_PARAMETERS
        )[0]
        qf1 = decomposed.fragments[0]
        assert plan.choice_for(qf1.fragment_id).fragment is qf1
        with pytest.raises(FederationError):
            plan.choice_for("QF99")


class TestDominanceAndClustering:
    def test_eliminate_dominated_keeps_cheapest_per_server_set(self, q6_setup):
        decomposed, options = q6_setup
        plans = enumerate_global_plans(
            decomposed, options, REFERENCE_PROFILE, DEFAULT_COST_PARAMETERS
        )
        survivors = eliminate_dominated(plans)
        # 2x2 server sets = 4 distinct combinations
        assert len(survivors) == 4
        seen = set()
        for plan in survivors:
            assert plan.servers not in seen
            seen.add(plan.servers)
        # each survivor is the cheapest for its server set
        for plan in plans:
            winner = next(s for s in survivors if s.servers == plan.servers)
            assert winner.total_cost <= plan.total_cost

    def test_cluster_near_cost_band(self, q6_setup):
        decomposed, options = q6_setup
        plans = enumerate_global_plans(
            decomposed, options, REFERENCE_PROFILE, DEFAULT_COST_PARAMETERS
        )
        survivors = eliminate_dominated(plans)
        cluster = cluster_near_cost(survivors, band=0.2)
        cheapest = survivors[0].total_cost
        assert all(p.total_cost <= cheapest * 1.2 for p in cluster)
        assert survivors[0] in cluster

    def test_cluster_zero_band_is_singleton(self, q6_setup):
        decomposed, options = q6_setup
        plans = enumerate_global_plans(
            decomposed, options, REFERENCE_PROFILE, DEFAULT_COST_PARAMETERS
        )
        cluster = cluster_near_cost(eliminate_dominated(plans), band=0.0)
        assert len(cluster) >= 1
        assert cluster[0].total_cost == min(p.total_cost for p in plans)

    def test_cluster_empty(self):
        assert cluster_near_cost([], 0.2) == []
