"""Unit/integration tests for the Information Integrator."""

import pytest

from repro.fed import FederationError, QueryStatus
from repro.harness import build_federation
from repro.sim import OutageSchedule
from repro.sqlengine import rows_equal_unordered
from repro.workload import TEST_SCALE


@pytest.fixture()
def deployment(sample_databases):
    return build_federation(
        scale=TEST_SCALE, with_qcc=False, prebuilt_databases=sample_databases
    )


SQL = (
    "SELECT o.priority, COUNT(*) AS n FROM orders o "
    "JOIN lineitem l ON o.orderkey = l.orderkey "
    "WHERE o.totalprice > 5000 GROUP BY o.priority"
)


class TestSubmit:
    def test_result_matches_single_server_execution(
        self, deployment, sample_databases
    ):
        result = deployment.integrator.submit(SQL)
        direct = sample_databases["S1"].run(SQL)
        assert rows_equal_unordered(result.rows, direct.rows)

    def test_response_time_positive_and_composed(self, deployment):
        result = deployment.integrator.submit(SQL)
        assert result.response_ms > 0
        assert result.remote_ms > 0
        assert result.merge_ms >= 0
        assert result.response_ms >= result.remote_ms

    def test_clock_advances(self, deployment):
        before = deployment.clock.now
        result = deployment.integrator.submit(SQL)
        assert deployment.clock.now == pytest.approx(
            before + result.response_ms
        )

    def test_patroller_records_completion(self, deployment):
        deployment.integrator.submit(SQL, label="QT1")
        records = deployment.integrator.patroller.records("QT1")
        assert len(records) == 1
        assert records[0].status is QueryStatus.COMPLETED

    def test_explain_table_records_winner(self, deployment):
        deployment.integrator.submit(SQL)
        record = deployment.integrator.explain_table.latest()
        assert record is not None
        assert record.plan.total_cost > 0

    def test_explicit_time_does_not_advance_clock(self, deployment):
        deployment.integrator.submit(SQL, t_ms=500.0)
        assert deployment.clock.now == 0.0


class TestCompile:
    def test_plans_ranked(self, deployment):
        _, plans = deployment.integrator.compile(SQL)
        totals = [p.total_cost for p in plans]
        assert totals == sorted(totals)
        assert len(plans) > 1  # three replicated servers x alternatives

    def test_explain_mode_does_not_execute(self, deployment):
        deployment.integrator.explain(SQL)
        assert len(deployment.integrator.patroller) == 0
        assert len(deployment.meta_wrapper.runtime_log) == 0

    def test_excluded_servers_respected(self, deployment):
        _, plans = deployment.integrator.compile(
            SQL, excluded_servers={"S3"}
        )
        assert all("S3" not in p.servers for p in plans)


class TestFailover:
    def test_retries_on_unavailable_server(self, sample_databases):
        # S3 (normally cheapest) is down: queries must fail over.
        availability = {"S3": OutageSchedule([(0.0, 1e9)])}
        deployment = build_federation(
            scale=TEST_SCALE,
            with_qcc=False,
            prebuilt_databases=sample_databases,
            availability=availability,
        )
        result = deployment.integrator.submit(SQL)
        assert "S3" not in result.plan.servers
        assert result.row_count > 0

    def test_all_servers_down_fails(self, sample_databases):
        availability = {
            name: OutageSchedule([(0.0, 1e9)])
            for name in ("S1", "S2", "S3")
        }
        deployment = build_federation(
            scale=TEST_SCALE,
            with_qcc=False,
            prebuilt_databases=sample_databases,
            availability=availability,
        )
        with pytest.raises(FederationError):
            deployment.integrator.submit(SQL)
        assert deployment.integrator.patroller.failure_count() == 1

    def test_mid_outage_failover_counts_retry(self, sample_databases):
        # S3 goes down *after* compile-time (we submit at a time inside
        # the outage window but with healthy explain before it): easiest
        # deterministic variant — outage covers everything, but explain
        # also fails, so MW simply skips S3 and no retry is needed.
        availability = {"S3": OutageSchedule([(0.0, 1e9)])}
        deployment = build_federation(
            scale=TEST_SCALE,
            with_qcc=False,
            prebuilt_databases=sample_databases,
            availability=availability,
        )
        result = deployment.integrator.submit(SQL)
        assert result.retries == 0


class TestMergePath:
    def test_multi_fragment_query_merges_at_ii(self, sample_databases):
        from repro.fed import NicknameRegistry
        from repro.harness.deployment import build_replica_federation

        deployment = build_replica_federation(scale=TEST_SCALE)
        result = deployment.integrator.submit(SQL)
        assert len(result.fragments) == 2
        assert result.merge_ms > 0
        direct = sample_databases["S1"].run(SQL)
        assert rows_equal_unordered(result.rows, direct.rows)


class TestRetryAccounting:
    """Regression tests for retry bookkeeping in ``submit()``."""

    @staticmethod
    def _always_fail(deployment):
        from repro.sim import ServerUnavailable

        def boom(choice, t_ms):
            raise ServerUnavailable(choice.server, t_ms, transient=True)

        deployment.meta_wrapper.execute_option = boom

    def test_exhaustion_message_reports_exact_counts(self, deployment):
        # Historically the message reported the attempt counter as
        # "retries", overstating the retry count by one.
        deployment.integrator.max_retries = 2
        self._always_fail(deployment)
        with pytest.raises(
            FederationError, match=r"after 2 retries \(3 attempts\)"
        ):
            deployment.integrator.submit(SQL)
        assert deployment.integrator.patroller.failure_count() == 1

    def test_retry_recompiles_at_advanced_time(self, deployment):
        # Each retry must compile (and route) at the advanced virtual
        # time — the failed attempt and its penalty have passed — not at
        # the original submission instant.
        integrator = deployment.integrator
        integrator.max_retries = 2
        self._always_fail(deployment)
        seen = []
        original = integrator.compile

        def spy(sql, t_ms=None, excluded_servers=None,
                staleness_tolerance_ms=None):
            seen.append(t_ms)
            return original(
                sql, t_ms, excluded_servers, staleness_tolerance_ms
            )

        integrator.compile = spy
        with pytest.raises(FederationError):
            integrator.submit(SQL, t_ms=0.0)
        overhead = integrator.compile_overhead_ms
        penalty = integrator.failure_penalty_ms
        assert seen == [
            0.0,
            overhead + penalty,
            overhead + 2 * penalty,
        ]
