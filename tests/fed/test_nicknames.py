"""Unit tests for the nickname registry."""

import pytest

from repro.fed import FederationError, NicknameRegistry
from repro.sqlengine import Column, ColumnType, Schema, TableDef, TableStats


def _table(name="orders"):
    return TableDef(
        name=name,
        schema=Schema((Column("id", ColumnType.INT),)),
        stats=TableStats(row_count=10),
    )


class TestRegistration:
    def test_first_registration_needs_table_def(self):
        registry = NicknameRegistry()
        with pytest.raises(FederationError, match="requires a table"):
            registry.register("orders", "S1")

    def test_register_and_lookup(self):
        registry = NicknameRegistry()
        registry.register("orders", "S1", table_def=_table())
        assert registry.servers_for("orders") == frozenset({"S1"})
        assert registry.remote_table("orders", "S1") == "orders"

    def test_replica_placement(self):
        registry = NicknameRegistry()
        registry.register("orders", "S1", table_def=_table())
        registry.register("orders", "S2", remote_table="orders_copy")
        assert registry.servers_for("orders") == frozenset({"S1", "S2"})
        assert registry.remote_table("orders", "S2") == "orders_copy"

    def test_duplicate_placement_rejected(self):
        registry = NicknameRegistry()
        registry.register("orders", "S1", table_def=_table())
        with pytest.raises(FederationError, match="already placed"):
            registry.register("orders", "S1")

    def test_unknown_nickname(self):
        with pytest.raises(FederationError, match="unknown nickname"):
            NicknameRegistry().placements("ghost")

    def test_missing_placement(self):
        registry = NicknameRegistry()
        registry.register("orders", "S1", table_def=_table())
        with pytest.raises(FederationError, match="no placement"):
            registry.remote_table("orders", "S9")

    def test_case_insensitive(self):
        registry = NicknameRegistry()
        registry.register("Orders", "S1", table_def=_table())
        assert registry.servers_for("ORDERS") == frozenset({"S1"})


class TestCommonServers:
    def _registry(self):
        registry = NicknameRegistry()
        registry.register("a", "S1", table_def=_table("a"))
        registry.register("a", "S2")
        registry.register("b", "S2", table_def=_table("b"))
        registry.register("b", "S3")
        return registry

    def test_intersection(self):
        assert self._registry().common_servers(["a", "b"]) == frozenset({"S2"})

    def test_disjoint(self):
        registry = self._registry()
        registry.register("c", "S9", table_def=_table("c"))
        assert registry.common_servers(["a", "c"]) == frozenset()

    def test_empty_input(self):
        assert self._registry().common_servers([]) == frozenset()


class TestGlobalCatalog:
    def test_catalog_carries_schema_and_stats(self):
        registry = NicknameRegistry()
        registry.register("orders", "S1", table_def=_table())
        table = registry.global_catalog.lookup("orders")
        assert table.stats.row_count == 10
        assert table.schema.columns[0].table == "orders"

    def test_catalog_stats_are_copies(self):
        original = _table()
        registry = NicknameRegistry()
        registry.register("orders", "S1", table_def=original)
        registry.global_catalog.lookup("orders").stats.row_count = 999
        assert original.stats.row_count == 10

    def test_nicknames_sorted(self):
        registry = NicknameRegistry()
        registry.register("zz", "S1", table_def=_table("zz"))
        registry.register("aa", "S1", table_def=_table("aa"))
        assert registry.nicknames() == ["aa", "zz"]
