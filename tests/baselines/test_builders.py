"""Unit tests for baseline deployment factories."""


from repro.baselines import (
    blind_round_robin_deployment,
    fixed_assignment_deployment,
    preferred_server_deployment,
    qcc_deployment,
    uncalibrated_deployment,
)
from repro.fed import (
    FixedRouter,
    PreferredServerRouter,
    RoundRobinRouter,
    CostBasedRouter,
)
from repro.workload import TEST_SCALE

SQL = "SELECT COUNT(*) FROM customer"


class TestFactories:
    def test_fixed(self, sample_databases):
        deployment = fixed_assignment_deployment(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        assert isinstance(deployment.integrator.router, FixedRouter)
        assert deployment.qcc is None
        deployment.integrator.submit(SQL, label="QT1")

    def test_fixed_routes_to_assigned_server(self, sample_databases):
        deployment = fixed_assignment_deployment(
            assignment={"QT1": "S2"},
            scale=TEST_SCALE,
            prebuilt_databases=sample_databases,
        )
        result = deployment.integrator.submit(SQL, label="QT1")
        assert result.plan.servers == frozenset({"S2"})

    def test_preferred(self, sample_databases):
        deployment = preferred_server_deployment(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        assert isinstance(deployment.integrator.router, PreferredServerRouter)
        result = deployment.integrator.submit(SQL)
        assert result.plan.servers == frozenset({"S3"})

    def test_uncalibrated(self, sample_databases):
        deployment = uncalibrated_deployment(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        assert isinstance(deployment.integrator.router, CostBasedRouter)
        assert deployment.qcc is None

    def test_blind_round_robin_spreads(self, sample_databases):
        deployment = blind_round_robin_deployment(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        assert isinstance(deployment.integrator.router, RoundRobinRouter)
        servers = set()
        for _ in range(3):
            result = deployment.integrator.submit(SQL)
            servers |= result.plan.servers
        assert len(servers) == 3

    def test_qcc(self, sample_databases):
        deployment = qcc_deployment(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        assert deployment.qcc is not None
        result = deployment.integrator.submit(SQL)
        assert deployment.qcc.execution_records >= 1
        assert result.row_count == 1
