"""Pytest bridge for the chaos harness: the CI smoke sweep.

Runs a fixed seed set through the full scenario-execute-check loop and
asserts every bundled invariant holds — the same loop ``python -m repro
chaos`` drives, so a red test here reproduces from the printed spec.
"""

import pytest

from repro.chaos import (
    generate_scenario,
    registered_checkers,
    run_checkers,
    run_scenario,
    violations,
)

#: (seed, index) pairs chosen to cover both topologies and all five
#: fault kinds; kept small so the tier-1 run stays fast.  The CI
#: chaos-smoke job sweeps 100 scenarios on top of this.
SMOKE_SCENARIOS = [(42, i) for i in range(6)] + [(42, 8), (42, 10), (7, 0)]

EXPECTED_CHECKERS = {
    "oracle-equivalence",
    "no-down-dispatch",
    "calibration-bounds",
    "cache-epoch",
    "engine-equivalence",
    "shed-only-over-budget",
}


def _databases_for(spec, sample_databases):
    # The triple topology reuses the session-scoped fixture (same data
    # seed); the replica topology's shared build is cached in-module.
    return sample_databases if spec.topology == "triple" else None


def test_all_bundled_checkers_are_registered():
    assert EXPECTED_CHECKERS <= set(registered_checkers())


@pytest.mark.parametrize("seed,index", SMOKE_SCENARIOS)
def test_invariants_hold(seed, index, sample_databases):
    spec = generate_scenario(seed, index)
    run = run_scenario(
        spec, databases=_databases_for(spec, sample_databases)
    )
    assert violations(run_checkers(run)) == []
    # Scenarios must exercise the federation, not no-op through it:
    # every query either completes, fails under faults, or is shed by
    # admission control (concurrent scenarios only).
    assert run.completed + run.failed + run.shed == len(spec.queries)
    assert run.oracle is not None and run.row_engine is not None
    if spec.arrival is None:
        assert run.shed == 0


def test_smoke_set_covers_both_arrival_modes():
    specs = [generate_scenario(s, i) for s, i in SMOKE_SCENARIOS]
    assert any(spec.arrival is None for spec in specs)
    assert any(spec.arrival is not None for spec in specs)


def test_rerun_is_byte_identical(sample_databases):
    # (42, 0) samples a concurrent arrival process, so this doubles as
    # the determinism proof for the event-scheduler path.
    spec = generate_scenario(42, 0)
    assert spec.arrival is not None
    databases = _databases_for(spec, sample_databases)
    first = run_scenario(spec, databases=databases)
    second = run_scenario(spec, databases=databases)
    for a, b in zip(first.outcomes, second.outcomes):
        assert (a.status, a.rows, a.response_ms, a.retries, a.servers) == (
            b.status,
            b.rows,
            b.response_ms,
            b.retries,
            b.servers,
        )
        assert a.fragment_ms == b.fragment_ms
    assert first.dispatches == second.dispatches
    assert first.cache_lookups == second.cache_lookups
    assert first.server_factors == second.server_factors
    assert first.ii_factor == second.ii_factor
    assert first.admission_decisions == second.admission_decisions


def test_hedged_scenario_upholds_every_invariant():
    """A hedged concurrent replica scenario under a latency fault passes
    the full checker registry — including the *exact* (not float-
    tolerant) oracle row equality the hedged branch of
    ``oracle-equivalence`` demands."""
    from repro.chaos import ArrivalSpec, FaultEvent, QuerySpec, ScenarioSpec

    base = generate_scenario(42, 0)
    assert base.arrival is not None  # reuse its sampled query classes
    spec = ScenarioSpec(
        seed=42,
        index=0,
        topology="replica",
        queries=tuple(
            QuerySpec(q.query_type, q.instance_id, q.gap_ms, klass="gold")
            for q in base.queries
        ),
        faults=(
            FaultEvent(
                kind="latency",
                server="S1",
                start_ms=0.0,
                end_ms=20_000.0,
                magnitude=0.8,
            ),
        ),
        arrival=ArrivalSpec(process="poisson", rate_qps=60.0),
        hedge_after_ms=20.0,
    )
    run = run_scenario(spec)
    assert violations(run_checkers(run)) == []
    assert run.completed + run.failed + run.shed == len(spec.queries)


def test_faults_actually_bite():
    """Across the smoke set, at least one scenario must degrade.

    A chaos harness whose fault schedules never intersect query
    execution tests nothing; this guards the horizon/gap calibration.
    """
    touched = 0
    for seed, index in SMOKE_SCENARIOS:
        spec = generate_scenario(seed, index)
        run = run_scenario(
            spec, with_oracle=False, with_engine_differential=False
        )
        if run.failed or any(o.retries for o in run.outcomes):
            touched += 1
    assert touched >= 1
