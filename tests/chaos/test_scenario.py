"""Scenario generation: determinism, serialisation, validity."""

import pytest

from repro.chaos import (
    ARRIVAL_PROCESSES,
    ArrivalSpec,
    FAULT_KINDS,
    FaultEvent,
    QuerySpec,
    ScenarioSpec,
    TOPOLOGY_SERVERS,
    generate_scenario,
    generate_scenarios,
)
from repro.chaos.scenario import (
    CHAOS_CLASS_NAMES,
    DEFAULT_HORIZON_MS,
    QUERY_TYPE_NAMES,
    fault_window_steps,
)


class TestGeneratorDeterminism:
    def test_same_seed_index_is_byte_identical(self):
        for index in range(10):
            a = generate_scenario(42, index)
            b = generate_scenario(42, index)
            assert a == b
            assert a.canonical_json() == b.canonical_json()

    def test_generate_scenarios_matches_pointwise(self):
        batch = generate_scenarios(7, 8)
        for index, spec in enumerate(batch):
            assert spec == generate_scenario(7, index)

    def test_different_seeds_differ(self):
        a = [generate_scenario(1, i).canonical_json() for i in range(5)]
        b = [generate_scenario(2, i).canonical_json() for i in range(5)]
        assert a != b

    def test_component_streams_are_independent(self):
        """Fault sampling must not perturb the workload stream.

        Halving the horizon changes every fault window but draws from
        the ``faults`` stream only — topology and queries are sampled
        from their own derived streams and must not move.
        """
        spec = generate_scenario(42, 0)
        narrow = generate_scenario(42, 0, horizon_ms=DEFAULT_HORIZON_MS / 2)
        assert narrow.topology == spec.topology
        assert narrow.queries == spec.queries
        assert narrow.staleness_tolerance_ms == spec.staleness_tolerance_ms


class TestSerialisation:
    @pytest.mark.parametrize("index", range(8))
    def test_json_round_trip(self, index):
        spec = generate_scenario(42, index)
        assert ScenarioSpec.from_json(spec.canonical_json()) == spec

    def test_dict_round_trip_preserves_tolerance(self):
        spec = ScenarioSpec(
            seed=1,
            index=0,
            topology="replica",
            queries=(QuerySpec("QT1", 0, 50.0),),
            staleness_tolerance_ms=500.0,
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_canonical_json_is_key_sorted(self):
        payload = generate_scenario(3, 0).canonical_json()
        assert payload.index('"faults"') < payload.index('"queries"')

    def test_arrival_round_trip(self):
        spec = ScenarioSpec(
            seed=1,
            index=0,
            topology="triple",
            queries=(QuerySpec("QT1", 0, 12.5, klass="gold"),),
            arrival=ArrivalSpec(process="bursty", rate_qps=40.0),
        )
        clone = ScenarioSpec.from_json(spec.canonical_json())
        assert clone == spec
        assert clone.arrival.describe() == "bursty@40qps"
        assert clone.queries[0].klass == "gold"

    def test_sampled_concurrent_scenario_round_trips(self):
        spec = next(
            generate_scenario(42, index)
            for index in range(20)
            if generate_scenario(42, index).arrival is not None
        )
        assert ScenarioSpec.from_json(spec.canonical_json()) == spec

    def test_legacy_dict_without_concurrency_keys_parses(self):
        # Verdict JSON written before the concurrency dimension existed
        # has no ``arrival`` key and no per-query ``klass`` — it must
        # keep deserialising as a sequential scenario.
        spec = generate_scenario(42, 0)
        payload = spec.to_dict()
        payload.pop("arrival", None)
        for query in payload["queries"]:
            query.pop("klass", None)
        legacy = ScenarioSpec.from_dict(payload)
        assert legacy.arrival is None
        assert all(q.klass == "" for q in legacy.queries)

    def test_unknown_arrival_process_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSpec(process="lockstep", rate_qps=10.0)

    def test_hedge_round_trip(self):
        spec = ScenarioSpec(
            seed=1,
            index=0,
            topology="replica",
            queries=(QuerySpec("QT1", 0, 12.5, klass="gold"),),
            arrival=ArrivalSpec(process="poisson", rate_qps=40.0),
            hedge_after_ms=75.0,
        )
        clone = ScenarioSpec.from_json(spec.canonical_json())
        assert clone == spec
        assert clone.hedge_after_ms == 75.0

    def test_hedge_key_absent_when_disabled(self):
        """hedge_after_ms=None must not appear in the serialised dict at
        all — pre-hedging verdict JSONL stays byte-identical, and old
        payloads without the key keep parsing."""
        spec = generate_scenario(42, 0)
        assert spec.hedge_after_ms is None
        payload = spec.to_dict()
        assert "hedge_after_ms" not in payload
        assert ScenarioSpec.from_dict(payload).hedge_after_ms is None

    def test_generator_never_samples_hedging(self):
        # Opt-in only (--hedge-after): sampled sweeps keep exact bytes.
        for index in range(20):
            assert generate_scenario(42, index).hedge_after_ms is None

    def test_reroute_round_trip(self):
        spec = ScenarioSpec(
            seed=1,
            index=0,
            topology="replica",
            queries=(QuerySpec("QT1", 0, 12.5, klass="gold"),),
            arrival=ArrivalSpec(process="poisson", rate_qps=40.0),
            reroute_batch_rows=16,
        )
        clone = ScenarioSpec.from_json(spec.canonical_json())
        assert clone == spec
        assert clone.reroute_batch_rows == 16

    def test_reroute_key_absent_when_disabled(self):
        # Same byte-compat contract as hedging: the key only appears
        # when the dimension is on, so pre-rerouting verdict JSONL is
        # unchanged and old payloads keep parsing.
        spec = generate_scenario(42, 0)
        assert spec.reroute_batch_rows is None
        payload = spec.to_dict()
        assert "reroute_batch_rows" not in payload
        assert ScenarioSpec.from_dict(payload).reroute_batch_rows is None

    def test_hedge_and_reroute_mutually_exclusive(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                seed=1,
                index=0,
                topology="replica",
                queries=(QuerySpec("QT1", 0, 12.5, klass="gold"),),
                arrival=ArrivalSpec(process="poisson", rate_qps=40.0),
                hedge_after_ms=75.0,
                reroute_batch_rows=16,
            )

    def test_default_sweep_never_samples_rerouting(self):
        for index in range(20):
            spec = generate_scenario(42, index)
            assert spec.reroute_batch_rows is None
            # Opting out explicitly is byte-identical to the default.
            assert (
                generate_scenario(42, index, reroute_rate=0.0)
                .canonical_json()
                == spec.canonical_json()
            )

    def test_reroute_rate_touches_only_concurrent_specs(self):
        from repro.chaos.scenario import REROUTE_BATCH_CHOICES

        sampled = 0
        for index in range(20):
            base = generate_scenario(42, index)
            spec = generate_scenario(42, index, reroute_rate=1.0)
            if base.arrival is None:
                assert spec == base
                continue
            assert spec.reroute_batch_rows in REROUTE_BATCH_CHOICES
            sampled += 1
            # Only the reroute field moves; every other stream is
            # untouched by the new dimension's RNG draw.
            assert spec.queries == base.queries
            assert spec.faults == base.faults
            assert spec.arrival == base.arrival
            assert spec.topology == base.topology
        assert sampled > 0


class TestValidity:
    @pytest.mark.parametrize("index", range(20))
    def test_sampled_scenarios_are_well_formed(self, index):
        spec = generate_scenario(99, index)
        servers = TOPOLOGY_SERVERS[spec.topology]
        assert 4 <= len(spec.queries) <= 8
        assert 1 <= len(spec.faults) <= 6
        for query in spec.queries:
            assert query.query_type in QUERY_TYPE_NAMES
            assert 0 <= query.instance_id <= 9
            if spec.arrival is None:
                # Sequential scenarios keep the paper's think-time band
                # and carry no priority class.
                assert 20.0 <= query.gap_ms <= 200.0
                assert query.klass == ""
            else:
                # Concurrent scenarios draw exponential interarrival
                # gaps and tag every query with a priority class.
                assert query.gap_ms >= 0.0
                assert query.klass in CHAOS_CLASS_NAMES
            assert query.sql(7).startswith("SELECT")
        if spec.arrival is not None:
            assert spec.arrival.process in ARRIVAL_PROCESSES
            assert spec.arrival.rate_qps > 0.0
        for fault in spec.faults:
            assert fault.kind in FAULT_KINDS
            assert fault.server in servers
            assert 0.0 <= fault.start_ms <= fault.end_ms
            assert fault.end_ms <= DEFAULT_HORIZON_MS * 1.2
        if spec.topology == "triple":
            assert all(f.kind != "replica_lag" for f in spec.faults)
            assert spec.staleness_tolerance_ms is None

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(seed=1, index=0, topology="mesh", queries=())

    def test_fault_outside_topology_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                seed=1,
                index=0,
                topology="triple",
                queries=(),
                faults=(FaultEvent("outage", "R1", 0.0, 100.0),),
            )

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor", "S1", 0.0, 100.0)

    def test_without_faults_strips_schedule_only(self):
        spec = generate_scenario(42, 1)
        oracle = spec.without_faults()
        assert oracle.faults == ()
        assert oracle.queries == spec.queries
        assert oracle.topology == spec.topology


class TestFaultWindowSteps:
    def test_overlap_takes_max_level(self):
        steps = fault_window_steps(
            [
                FaultEvent("storm", "S1", 100.0, 300.0, magnitude=0.4),
                FaultEvent("storm", "S1", 200.0, 400.0, magnitude=0.8),
            ]
        )
        assert steps == [
            (100.0, 0.4),
            (200.0, 0.8),
            (400.0, 0.0),
        ]

    def test_disjoint_windows_return_to_zero(self):
        steps = fault_window_steps(
            [
                FaultEvent("latency", "S1", 100.0, 200.0, magnitude=0.5),
                FaultEvent("latency", "S1", 300.0, 400.0, magnitude=0.7),
            ]
        )
        assert steps == [
            (100.0, 0.5),
            (200.0, 0.0),
            (300.0, 0.7),
            (400.0, 0.0),
        ]
