"""Shrinker tests: planted failures must reduce to minimal reproducers."""

import pytest

from repro.chaos import (
    FaultEvent,
    QuerySpec,
    ScenarioSpec,
    repro_command,
    shrink_schedule,
)


def _big_spec(fault_count=12, query_count=8):
    faults = []
    servers = ("S1", "S2", "S3")
    for i in range(fault_count):
        start = 100.0 * i
        faults.append(
            FaultEvent(
                "outage" if i % 2 else "storm",
                servers[i % 3],
                start,
                start + 80.0,
                magnitude=0.5 if i % 2 == 0 else 0.0,
            )
        )
    queries = tuple(
        QuerySpec("QT1", i % 4, 50.0) for i in range(query_count)
    )
    return ScenarioSpec(
        seed=1,
        index=0,
        topology="triple",
        queries=queries,
        faults=tuple(faults),
    )


def _needs_pair(spec):
    """Fails iff the schedule keeps an S1 outage AND an S2 storm."""
    has_outage = any(
        f.kind == "outage" and f.server == "S1" for f in spec.faults
    )
    has_storm = any(
        f.kind == "storm" and f.server == "S2" for f in spec.faults
    )
    if has_outage and has_storm:
        return "S1 outage + S2 storm interaction"
    return None


def test_shrinks_planted_schedule_to_minimal_pair():
    spec = _big_spec()
    assert len(spec.faults) == 12
    result = shrink_schedule(spec, _needs_pair)
    # Acceptance bar: a planted failure reduces to <= 3 fault events.
    assert len(result.spec.faults) <= 3
    # And for this predicate the true minimum is exactly the pair.
    assert len(result.spec.faults) == 2
    kinds = sorted((f.kind, f.server) for f in result.spec.faults)
    assert kinds == [("outage", "S1"), ("storm", "S2")]
    assert result.message == "S1 outage + S2 storm interaction"
    assert not result.budget_exhausted


def test_shrinks_workload_too():
    spec = _big_spec()

    def probe(candidate):
        base = _needs_pair(candidate)
        if base is None:
            return None
        # Failure also requires at least one query to trigger it.
        return base if candidate.queries else None

    result = shrink_schedule(spec, probe)
    assert len(result.spec.faults) == 2
    assert len(result.spec.queries) <= 1


def test_single_fault_failure_shrinks_to_one_event():
    spec = _big_spec()

    def probe(candidate):
        for fault in candidate.faults:
            if fault.kind == "outage" and fault.start_ms == 300.0:
                return "the 300ms outage alone"
        return None

    result = shrink_schedule(spec, probe)
    assert len(result.spec.faults) == 1
    assert result.spec.faults[0].start_ms == 300.0


def test_non_failing_spec_rejected():
    spec = _big_spec(fault_count=2)

    with pytest.raises(ValueError):
        shrink_schedule(spec, lambda candidate: None)


def test_budget_bounds_probe_executions():
    spec = _big_spec(fault_count=12)
    calls = []

    def probe(candidate):
        calls.append(1)
        return _needs_pair(candidate)

    result = shrink_schedule(spec, probe, max_attempts=5)
    # Initial probe + at most max_attempts candidates.
    assert len(calls) <= 6
    assert result.attempts <= 5


def test_repro_command_round_trips():
    spec = _big_spec(fault_count=3)
    command = repro_command(spec)
    assert command.startswith("repro chaos --seed 1 --repro '")
    payload = command.split("--repro '", 1)[1].rstrip("'")
    assert ScenarioSpec.from_json(payload) == spec


def test_shrunk_spec_still_fails_probe():
    spec = _big_spec()
    result = shrink_schedule(spec, _needs_pair)
    assert _needs_pair(result.spec) is not None
