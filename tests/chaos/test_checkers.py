"""Mutation-style self-tests: every bundled checker must be falsifiable.

Each test takes a known-good scenario run, plants exactly the corruption
its checker exists to catch, and asserts the checker reports it.  A
checker that cannot fail on seeded bad input provides no coverage — it
would wave through a real regression just as silently.
"""

import copy
import dataclasses

import pytest

from repro.chaos import (
    CacheLookupRecord,
    DispatchRecord,
    generate_scenario,
    run_checkers,
    run_scenario,
)
from repro.chaos.checkers import registered_checkers
from repro.chaos.runner import QueryOutcome
from repro.fed.admission import AdmissionDecision


@pytest.fixture(scope="module")
def clean_run(sample_databases):
    """One executed triple-topology scenario with no violations."""
    spec = generate_scenario(42, 0)
    assert spec.topology == "triple"
    run = run_scenario(spec, databases=sample_databases)
    assert not any(run_checkers(run).values())
    return run


def _mutant(clean_run):
    return copy.deepcopy(clean_run)


def test_oracle_equivalence_catches_row_divergence(clean_run):
    run = _mutant(clean_run)
    victim = next(o for o in run.outcomes if o.status == "ok" and o.rows)
    # Duplicate a row: same column types, different multiset.
    victim.rows.append(victim.rows[0])
    found = run_checkers(run, names=["oracle-equivalence"])
    assert found["oracle-equivalence"], "row corruption not detected"


def test_oracle_equivalence_catches_oracle_failure(clean_run):
    run = _mutant(clean_run)
    run.oracle[0].status = "failed"
    run.oracle[0].error = "planted"
    found = run_checkers(run, names=["oracle-equivalence"])
    assert any(
        "fault-free" in message for message in found["oracle-equivalence"]
    )


def _rerouting_mutant(clean_run, batch_rows=4):
    """Mutant whose spec opts into re-routing (nothing migrated yet)."""
    run = _mutant(clean_run)
    run.spec = dataclasses.replace(
        run.spec, reroute_batch_rows=batch_rows
    )
    return run


def test_reroute_oracle_equivalence_catches_merge_drift(clean_run):
    run = _rerouting_mutant(clean_run)
    victim = next(o for o in run.outcomes if o.status == "ok" and o.rows)
    victim.reroutes = 1
    # A seam defect: the merge dropped the last row of the prefix.
    victim.rows.pop(0)
    found = run_checkers(run, names=["reroute-oracle-equivalence"])
    assert found["reroute-oracle-equivalence"], "merge drift not detected"


def test_reroute_oracle_equivalence_catches_unreferenced_migration(
    clean_run,
):
    run = _rerouting_mutant(clean_run)
    victim = next(o for o in run.outcomes if o.status == "ok")
    victim.reroutes = 1
    oracle = next(o for o in run.oracle if o.index == victim.index)
    oracle.status = "failed"
    oracle.error = "planted"
    found = run_checkers(run, names=["reroute-oracle-equivalence"])
    assert any(
        "oracle counterpart" in message
        for message in found["reroute-oracle-equivalence"]
    )


def test_reroute_oracle_equivalence_catches_disabled_migration(clean_run):
    run = _mutant(clean_run)
    assert run.spec.reroute_batch_rows is None
    victim = next(o for o in run.outcomes if o.status == "ok")
    victim.reroutes = 1
    found = run_checkers(run, names=["reroute-oracle-equivalence"])
    assert any(
        "disabled" in message
        for message in found["reroute-oracle-equivalence"]
    )


def test_reroute_oracle_equivalence_passes_exact_merge(clean_run):
    run = _rerouting_mutant(clean_run)
    victim = next(o for o in run.outcomes if o.status == "ok" and o.rows)
    victim.reroutes = 1
    oracle = next(o for o in run.oracle if o.index == victim.index)
    victim.rows = [tuple(row) for row in oracle.rows]
    found = run_checkers(run, names=["reroute-oracle-equivalence"])
    assert not found["reroute-oracle-equivalence"]


def test_no_down_dispatch_catches_bad_dispatch(clean_run):
    run = _mutant(clean_run)
    run.dispatches.append(
        DispatchRecord(t_ms=123.0, server="S1", down_before=("S1", "S3"))
    )
    found = run_checkers(run, names=["no-down-dispatch"])
    assert found["no-down-dispatch"], "down-server dispatch not detected"


def test_calibration_bounds_catches_runaway_factor(clean_run):
    run = _mutant(clean_run)
    low, high = run.factor_bounds
    run.server_factors["S1"] = high * 10.0
    found = run_checkers(run, names=["calibration-bounds"])
    assert found["calibration-bounds"], "out-of-bounds factor not detected"


def test_calibration_bounds_catches_ii_factor(clean_run):
    run = _mutant(clean_run)
    low, _ = run.factor_bounds
    run.ii_factor = low / 2.0
    found = run_checkers(run, names=["calibration-bounds"])
    assert any(
        "II workload" in message
        for message in found["calibration-bounds"]
    )


def test_cache_epoch_catches_stale_hit(clean_run):
    run = _mutant(clean_run)
    run.cache_lookups.append(
        CacheLookupRecord(t_ms=50.0, entry_epoch=0, epoch_at_lookup=3)
    )
    found = run_checkers(run, names=["cache-epoch"])
    assert found["cache-epoch"], "stale plan-cache hit not detected"


def test_engine_equivalence_catches_row_divergence(clean_run):
    run = _mutant(clean_run)
    victim = next(o for o in run.row_engine if o.status == "ok" and o.rows)
    victim.rows.append(victim.rows[0])
    found = run_checkers(run, names=["engine-equivalence"])
    assert found["engine-equivalence"], "engine row divergence not detected"


def test_engine_equivalence_catches_timing_divergence(clean_run):
    run = _mutant(clean_run)
    victim = next(o for o in run.row_engine if o.status == "ok")
    victim.response_ms = victim.response_ms + 1.0
    found = run_checkers(run, names=["engine-equivalence"])
    assert found["engine-equivalence"], "timing divergence not detected"


def test_engine_equivalence_catches_routing_divergence(clean_run):
    run = _mutant(clean_run)
    victim = next(o for o in run.row_engine if o.status == "ok")
    victim.servers = ("S9",)
    found = run_checkers(run, names=["engine-equivalence"])
    assert found["engine-equivalence"], "routing divergence not detected"


def test_shed_only_over_budget_catches_headroom_shed(clean_run):
    run = _mutant(clean_run)
    # A rejection recorded while the bucket was full and the predicted
    # sojourn sat under the (infinite) budget: shedding without cause.
    run.admission_decisions.append(
        AdmissionDecision(
            klass="bronze",
            t_ms=10.0,
            admitted=False,
            tokens_before=5.0,
            predicted_ms=1.0,
            budget_ms=float("inf"),
            reason="no-tokens",
        )
    )
    found = run_checkers(run, names=["shed-only-over-budget"])
    assert found["shed-only-over-budget"], "headroom shed not detected"


def test_shed_only_over_budget_catches_unevidenced_shed(clean_run):
    run = _mutant(clean_run)
    # A shed outcome with no rejecting admission decision backing it.
    run.outcomes.append(
        QueryOutcome(
            index=len(run.outcomes),
            query_type="QT1",
            sql="SELECT 1",
            submitted_ms=0.0,
            status="shed",
            klass="bronze",
        )
    )
    found = run_checkers(run, names=["shed-only-over-budget"])
    assert any(
        "without evidence" in message
        for message in found["shed-only-over-budget"]
    )


def test_every_bundled_checker_has_a_mutation_test(clean_run):
    """No checker ships without a falsifiability proof in this module."""
    covered = {
        "oracle-equivalence",
        "reroute-oracle-equivalence",
        "no-down-dispatch",
        "calibration-bounds",
        "cache-epoch",
        "engine-equivalence",
        "shed-only-over-budget",
    }
    assert set(registered_checkers()) == covered, (
        "a checker was added without a mutation-style self-test; "
        "add one here and list it in `covered`"
    )


def test_unknown_checker_name_rejected(clean_run):
    with pytest.raises(KeyError):
        run_checkers(clean_run, names=["not-a-checker"])
