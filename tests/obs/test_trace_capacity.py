"""Explicit-parent spans and the span-capacity drop accounting."""

import repro.obs as obs
from repro.obs.trace import NULL_SPAN, QueryTrace, Tracer


class TestBeginChild:
    def test_attaches_to_explicit_parent_not_stack(self):
        trace = QueryTrace(1, "sql", 0.0)
        root = trace.begin("query", 0.0)
        a = trace.begin_child(root, "dispatch", 1.0, server="S1")
        b = trace.begin_child(root, "dispatch", 1.0, server="S2")
        # Concurrent siblings: both under root, neither on the stack —
        # a stack-nested begin() still lands under root, not under b.
        nested = trace.begin("merge", 5.0)
        assert root.children == [a, b, nested]
        trace.end(nested, 6.0)
        trace.end(b, 7.0)
        trace.end(a, 8.0)
        assert (a.end_ms, b.end_ms) == (8.0, 7.0)

    def test_end_of_child_leaves_stack_untouched(self):
        trace = QueryTrace(1, "sql", 0.0)
        root = trace.begin("query", 0.0)
        child = trace.begin_child(root, "dispatch", 1.0)
        trace.end(child, 2.0)
        # The stack still holds root: a new begin() nests under it.
        inner = trace.begin("merge", 3.0)
        assert inner in root.children

    def test_grandchildren_nest_under_explicit_parents(self):
        trace = QueryTrace(1, "sql", 0.0)
        root = trace.begin("query", 0.0)
        dispatch = trace.begin_child(root, "dispatch", 1.0)
        wait = trace.begin_child(dispatch, "queue_wait", 1.0)
        service = trace.begin_child(dispatch, "service", 3.0)
        assert dispatch.children == [wait, service]
        assert trace.find("queue_wait") == [wait]


class TestSpanCapacity:
    def test_overflow_returns_null_span_and_counts(self):
        trace = QueryTrace(1, "sql", 0.0, max_spans=2)
        a = trace.begin("a", 0.0)
        trace.begin_child(a, "b", 1.0)
        dropped = trace.begin("c", 2.0)
        assert dropped is NULL_SPAN
        assert trace.spans_dropped == 1
        assert trace.span_count == 2
        # Ending and annotating the null span is harmless.
        trace.end(dropped, 3.0, note="x")
        assert trace.to_dict()["spans_dropped"] == 1

    def test_child_of_dropped_parent_is_counted_too(self):
        trace = QueryTrace(1, "sql", 0.0, max_spans=1)
        trace.begin("a", 0.0)
        parent = trace.begin("b", 1.0)
        assert parent is NULL_SPAN
        child = trace.begin_child(parent, "c", 2.0)
        assert child is NULL_SPAN
        assert trace.spans_dropped == 2

    def test_events_respect_the_budget(self):
        trace = QueryTrace(1, "sql", 0.0, max_spans=1)
        trace.begin("a", 0.0)
        assert trace.event("e", 1.0) is NULL_SPAN
        assert trace.spans_dropped == 1

    def test_unlimited_when_max_spans_none(self):
        trace = QueryTrace(1, "sql", 0.0, max_spans=None)
        for i in range(100):
            trace.event("e", float(i))
        assert trace.spans_dropped == 0

    def test_tracer_aggregates_drops_and_feeds_counter(self):
        class Counter:
            value = 0

            def inc(self, amount=1.0):
                self.value += amount

        tracer = Tracer(max_spans=1)
        counter = Counter()
        tracer.drop_counter = counter
        trace = tracer.start(1, "sql", 0.0)
        trace.begin("a", 0.0)
        trace.begin("b", 1.0)
        trace.event("c", 2.0)
        assert trace.spans_dropped == 2
        assert tracer.spans_dropped == 2
        assert counter.value == 2

    def test_configure_wires_trace_spans_dropped_total(self):
        sink = obs.configure(metrics=True, tracing=True, log_level=None)
        try:
            tracer = sink.tracer
            assert tracer.drop_counter is not None
            tracer.max_spans = 1
            trace = tracer.start(7, "sql", 0.0)
            trace.begin("a", 0.0)
            trace.begin("b", 1.0)
            assert (
                sink.metrics.counter("trace_spans_dropped_total").value == 1
            )
        finally:
            obs.disable()
