"""Trace-span nesting, JSON export and tracer retention."""

from __future__ import annotations

import json

import repro.obs as obs
from repro.obs import NULL_TRACE, Tracer
from repro.obs.trace import NullTracer, QueryTrace


class TestSpanNesting:
    def test_begin_nests_under_open_span(self):
        trace = QueryTrace(1, "SELECT 1", 0.0)
        outer = trace.begin("plan_enumeration", 0.0)
        inner = trace.begin("calibration_lookup", 1.0, server="S1")
        trace.end(inner, 2.0)
        trace.end(outer, 3.0)
        assert trace.spans == [outer]
        assert outer.children == [inner]
        assert inner.attributes["server"] == "S1"
        assert inner.duration_ms == 1.0
        assert outer.duration_ms == 3.0

    def test_siblings_after_end(self):
        trace = QueryTrace(1, "q", 0.0)
        first = trace.begin("decompose", 0.0)
        trace.end(first, 1.0)
        second = trace.begin("route", 1.0)
        trace.end(second, 2.0)
        assert trace.spans == [first, second]
        assert first.children == []

    def test_event_is_zero_duration_child(self):
        trace = QueryTrace(1, "q", 0.0)
        span = trace.begin("dispatch", 0.0)
        event = trace.event("retry", 5.0, server="S2")
        trace.end(span, 9.0)
        assert span.children == [event]
        assert event.duration_ms == 0.0
        assert event.attributes == {"server": "S2"}

    def test_end_closes_orphaned_descendants(self):
        trace = QueryTrace(1, "q", 0.0)
        outer = trace.begin("outer", 0.0)
        trace.begin("inner", 1.0)  # never explicitly ended
        trace.end(outer, 4.0)
        # Closing the outer span pops the dangling inner one too.
        follow = trace.begin("next", 5.0)
        assert follow in trace.spans

    def test_finish_closes_everything(self):
        trace = QueryTrace(1, "q", 0.0)
        span = trace.begin("dispatch", 0.0)
        trace.finish(7.0, status="failed")
        assert span.end_ms == 7.0
        assert trace.status == "failed"
        assert trace.response_ms == 7.0

    def test_find_searches_recursively(self):
        trace = QueryTrace(1, "q", 0.0)
        trace.begin("plan_enumeration", 0.0)
        trace.event("calibration_lookup", 0.0, server="S1")
        trace.event("calibration_lookup", 0.0, server="S2")
        found = trace.find("calibration_lookup")
        assert [s.attributes["server"] for s in found] == ["S1", "S2"]


class TestJsonExport:
    def test_round_trips_through_json(self):
        trace = QueryTrace(3, "SELECT 1", 10.0)
        span = trace.begin("route", 10.0, servers=["S3"])
        trace.end(span, 11.0, estimated_total=4.2)
        trace.finish(12.0)
        payload = json.loads(trace.to_json())
        assert payload["query_id"] == 3
        assert payload["status"] == "completed"
        assert payload["response_ms"] == 2.0
        (route,) = payload["spans"]
        assert route["name"] == "route"
        assert route["attributes"]["estimated_total"] == 4.2


class TestTracer:
    def test_tracks_current_and_finished(self):
        tracer = Tracer(keep=2)
        trace = tracer.start(1, "q", 0.0)
        assert tracer.current is trace
        tracer.finish(trace, 5.0)
        assert tracer.current is None
        assert tracer.last() is trace

    def test_retention_is_bounded(self):
        tracer = Tracer(keep=2)
        for query_id in range(1, 5):
            trace = tracer.start(query_id, "q", 0.0)
            tracer.finish(trace, 1.0)
        assert [t.query_id for t in tracer.finished] == [3, 4]
        assert tracer.for_query(4) is not None
        assert tracer.for_query(1) is None

    def test_for_query_matches_the_running_trace(self):
        tracer = Tracer(keep=2)
        done = tracer.start(1, "q", 0.0)
        tracer.finish(done, 1.0)
        running = tracer.start(2, "q", 2.0)
        assert tracer.for_query(2) is running
        assert tracer.for_query(1) is done
        tracer.finish(running, 3.0)
        assert tracer.for_query(2) is running

    def test_trace_capacity_is_configurable(self, live_obs):
        sink = obs.configure(log_level=None, trace_capacity=3)
        for query_id in range(1, 6):
            trace = sink.tracer.start(query_id, "q", 0.0)
            sink.tracer.finish(trace, 1.0)
        assert [t.query_id for t in sink.tracer.finished] == [3, 4, 5]


class TestNullTracer:
    def test_start_returns_shared_inert_trace(self):
        tracer = NullTracer()
        trace = tracer.start(1, "q", 0.0)
        assert trace is NULL_TRACE
        assert tracer.current is None
        span = trace.begin("dispatch", 0.0, server="S1")
        trace.end(span, 1.0)
        trace.event("retry", 1.0)
        trace.finish(2.0)
        assert trace.spans == []
        assert trace.finished_ms is None
