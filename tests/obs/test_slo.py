"""SLO monitor: burn rates, multi-window alerts, verdict determinism."""

import math
from types import SimpleNamespace

import pytest

from repro.fed.admission import PriorityClass
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_TARGET_MS,
    BurnWindow,
    SLOMonitor,
    SLOPolicy,
    policy_for_class,
)

#: One window pair with easy round numbers: long 100ms / short 25ms,
#: firing at 4x budget burn.
WINDOW = BurnWindow("w", long_ms=100.0, short_ms=25.0, threshold=4.0)


def monitor(objective=0.9, target_ms=50.0):
    return SLOMonitor(
        [
            SLOPolicy(
                klass="gold",
                target_ms=target_ms,
                objective=objective,
                windows=(WINDOW,),
            )
        ]
    )


class TestPolicyForClass:
    def test_budgeted_class_uses_its_budget_as_target(self):
        spec = PriorityClass("batch", rank=2, budget_ms=800.0)
        policy = policy_for_class(spec)
        assert policy.target_ms == 800.0
        assert policy.klass == "batch"

    def test_unbudgeted_class_falls_back_to_default(self):
        spec = PriorityClass("gold", rank=0, budget_ms=math.inf)
        assert policy_for_class(spec).target_ms == DEFAULT_TARGET_MS
        assert (
            policy_for_class(spec, default_target_ms=250.0).target_ms == 250.0
        )

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            SLOPolicy(klass="x", objective=1.0)
        with pytest.raises(ValueError):
            BurnWindow("w", long_ms=10.0, short_ms=20.0, threshold=1.0)


class TestBurnRate:
    def test_burn_is_bad_fraction_over_error_budget(self):
        m = monitor(objective=0.9)
        for i in range(8):
            m.observe_completion("gold", finished_ms=10.0 + i, latency_ms=1.0)
        m.observe_shed("gold", 18.0)
        m.observe_failure("gold", 19.0)
        # 2 bad of 10 in the window: (0.2) / (0.1 budget) = 2x.
        assert m.burn_rate("gold", 20.0, 100.0) == pytest.approx(2.0)

    def test_empty_window_burns_nothing(self):
        m = monitor()
        m.observe_shed("gold", 5.0)
        assert m.burn_rate("gold", 200.0, 50.0) == 0.0

    def test_window_is_half_open_on_the_left(self):
        m = monitor()
        m.observe_shed("gold", 100.0)
        assert m.burn_rate("gold", 200.0, 100.0) == 0.0  # t in (100, 200]
        assert m.burn_rate("gold", 200.0, 100.0 + 1e-9) > 0.0

    def test_slow_completion_is_bad(self):
        m = monitor(target_ms=50.0)
        m.observe_completion("gold", 10.0, latency_ms=50.0)  # on target: good
        m.observe_completion("gold", 11.0, latency_ms=50.1)  # over: bad
        assert m.burn_rate("gold", 20.0, 100.0) == pytest.approx(5.0)

    def test_unknown_class_raises(self):
        m = monitor()
        with pytest.raises(KeyError):
            m.observe_shed("bronze", 1.0)
        with pytest.raises(KeyError):
            m.burn_rate("bronze", 1.0, 10.0)


class TestSweep:
    def test_alert_requires_both_windows_over_threshold(self):
        m = monitor(objective=0.9)  # threshold 4x => >= 40% bad
        # Old burst of badness: saturates the long window at checkpoints
        # shortly after, but the short window has gone quiet by the
        # first checkpoint (grid at 50/100ms, burst over by 5ms).
        for i in range(5):
            m.observe_shed("gold", 1.0 + i)
        for i in range(5):
            m.observe_completion("gold", 30.0 + i, latency_ms=1.0)
        (alert,) = m.sweep("gold", end_ms=100.0, step_ms=50.0)
        assert alert.peak_long_burn >= alert.threshold
        assert not alert.fired, (
            "long-window-only breach must not page: the burst ended"
        )

    def test_sustained_badness_fires_and_dates_the_breach(self):
        m = monitor(objective=0.9)
        for i in range(20):
            m.observe_shed("gold", 30.0 + i * 4.0)  # bad from 30ms on
        (alert,) = m.sweep("gold", end_ms=200.0, step_ms=25.0)
        assert alert.fired
        assert alert.first_fired_ms == 50.0
        assert alert.checkpoints_fired > 1

    def test_step_grid_is_inclusive_of_end(self):
        m = monitor()
        m.observe_shed("gold", 99.0)
        (alert,) = m.sweep("gold", end_ms=100.0, step_ms=50.0)
        assert alert.peak_short_burn > 0.0

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            monitor().sweep("gold", end_ms=100.0, step_ms=0.0)


class TestReport:
    def test_default_step_is_quarter_of_smallest_short_window(self):
        report = monitor().report(end_ms=100.0)
        assert report.step_ms == WINDOW.short_ms / 4.0

    def test_no_traffic_class_has_no_compliance_and_no_breach(self):
        report = monitor().report(end_ms=100.0)
        verdict = report.verdict_for("gold")
        assert verdict.compliance is None
        assert verdict.budget_burned == 0.0
        assert not verdict.breached
        assert not report.breached

    def test_compliance_below_objective_breaches_without_alerts(self):
        m = monitor(objective=0.9)
        # Enough good traffic around each bad event that no window ever
        # reaches the 4x burn threshold — the breach, when it comes, is
        # purely the whole-run compliance dropping under the objective.
        for t in (100.0, 200.0, 300.0, 400.0, 500.0, 960.0, 970.0,
                  980.0, 990.0):
            m.observe_completion("gold", t, latency_ms=1.0)
        m.observe_shed("gold", 1000.0)
        verdict = m.report(end_ms=1000.0, step_ms=25.0).verdict_for("gold")
        assert verdict.compliance == pytest.approx(0.9)
        assert not any(alert.fired for alert in verdict.alerts)
        assert not verdict.breached
        m.observe_shed("gold", 1001.0)
        verdict = m.report(end_ms=1001.0, step_ms=25.0).verdict_for("gold")
        assert verdict.compliance < 0.9
        assert not any(alert.fired for alert in verdict.alerts)
        assert verdict.breached

    def test_shed_and_failed_are_itemised(self):
        m = monitor()
        m.observe_completion("gold", 1.0, latency_ms=1.0)
        m.observe_shed("gold", 2.0)
        m.observe_failure("gold", 3.0)
        verdict = m.report(end_ms=10.0).verdict_for("gold")
        assert (verdict.total, verdict.good, verdict.bad) == (3, 1, 2)
        assert (verdict.shed, verdict.failed) == (1, 1)

    def test_ingest_maps_handles_to_events(self):
        m = monitor(target_ms=50.0)
        handles = [
            SimpleNamespace(
                klass="gold",
                submitted_ms=10.0,
                result=SimpleNamespace(response_ms=40.0),
                shed=None,
                error=None,
            ),
            SimpleNamespace(
                klass="gold",
                submitted_ms=20.0,
                result=None,
                shed=object(),
                error=None,
            ),
            SimpleNamespace(
                klass="gold",
                submitted_ms=30.0,
                result=None,
                shed=None,
                error=RuntimeError("boom"),
            ),
        ]
        m.ingest(handles)
        verdict = m.report(end_ms=100.0).verdict_for("gold")
        assert (verdict.good, verdict.shed, verdict.failed) == (1, 1, 1)

    def test_report_is_deterministic(self):
        def build():
            m = monitor(objective=0.9)
            for i in range(30):
                if i % 3 == 0:
                    m.observe_shed("gold", i * 5.0)
                else:
                    m.observe_completion("gold", i * 5.0, latency_ms=10.0)
            return m.report(end_ms=160.0).to_dict()

        assert build() == build()

    def test_emit_metrics_publishes_verdict_families(self):
        registry = MetricsRegistry()
        m = monitor(objective=0.9)
        for i in range(20):
            m.observe_shed("gold", 30.0 + i * 4.0)
        m.report(end_ms=200.0).emit_metrics(registry)
        assert registry.gauge("slo_compliance", klass="gold").value == 0.0
        assert registry.gauge("slo_budget_burned", klass="gold").value > 1.0
        assert (
            registry.counter("slo_alerts_total", klass="gold", window="w")
            .value
            == 1
        )

    def test_duplicate_policy_rejected(self):
        with pytest.raises(ValueError):
            SLOMonitor(
                [SLOPolicy(klass="gold"), SLOPolicy(klass="gold")]
            )
        with pytest.raises(ValueError):
            SLOMonitor([])
