"""Queue-hook span recording and the exact latency decomposition."""

from types import SimpleNamespace

from repro.obs.flight import QueueSpanRecorder, SpanTag, decompose_trace
from repro.obs.trace import QueryTrace
from repro.sim.sched import Completion


def _trace_with_dispatch():
    trace = QueryTrace(1, "sql", 0.0)
    root = trace.begin("query", 0.0)
    dispatch = trace.begin_child(root, "dispatch", 10.0, server="S1")
    return trace, root, dispatch


def _job(tag):
    return SimpleNamespace(tag=tag)


QUEUE = SimpleNamespace(name="S1")


def _completion(queued, wait, service, contended=True):
    # wait is the primitive: a contended completion's finished instant
    # reconstructs as queued + (wait + service) in that order.
    return Completion(
        queue="S1",
        queued_ms=queued,
        started_ms=queued + wait,
        finished_ms=queued + (wait + service) if contended else (
            queued + service
        ),
        demand_ms=service,
        service_ms=service,
        depth_at_arrival=3,
        contended=contended,
    )


class TestQueueSpanRecorder:
    def test_lifecycle_emits_snapped_wait_and_service(self):
        trace, _, dispatch = _trace_with_dispatch()
        recorder = QueueSpanRecorder()
        job = _job(SpanTag(trace, dispatch))
        recorder.on_enqueue(QUEUE, job, 10.0)
        recorder.on_start(QUEUE, job, 14.0)
        completion = _completion(10.0, 4.0, 6.0)
        recorder.on_complete(QUEUE, job, completion)

        (wait,) = trace.find("queue_wait")
        (service,) = trace.find("service")
        assert dispatch.children == [wait, service]
        assert (wait.start_ms, wait.end_ms) == (10.0, 14.0)
        assert (service.start_ms, service.end_ms) == (14.0, 20.0)
        assert wait.attributes["wait_ms"] == 4.0
        assert wait.attributes["depth_at_arrival"] == 3
        assert service.attributes["service_ms"] == 6.0
        # The bit-exact identity the whole layer is built on.
        assert (
            wait.attributes["wait_ms"] + service.attributes["service_ms"]
            == service.attributes["sojourn_ms"]
        )

    def test_ps_completion_rewrites_provisional_boundary(self):
        # Under PS on_start fires at the arrival instant; the logical
        # wait/service split only exists at completion and must
        # overwrite the provisional zero-width wait span.
        trace, _, dispatch = _trace_with_dispatch()
        recorder = QueueSpanRecorder()
        job = _job(SpanTag(trace, dispatch))
        recorder.on_enqueue(QUEUE, job, 10.0)
        recorder.on_start(QUEUE, job, 10.0)
        recorder.on_complete(QUEUE, job, _completion(10.0, 5.0, 6.0))
        (wait,) = trace.find("queue_wait")
        (service,) = trace.find("service")
        assert (wait.start_ms, wait.end_ms) == (10.0, 15.0)
        assert (service.start_ms, service.end_ms) == (15.0, 21.0)

    def test_completion_without_start_synthesises_service_span(self):
        # FIFO cancel-restack can complete a job whose deferred start
        # notification never fired in this recorder's lifetime.
        trace, _, dispatch = _trace_with_dispatch()
        recorder = QueueSpanRecorder()
        job = _job(SpanTag(trace, dispatch))
        recorder.on_enqueue(QUEUE, job, 10.0)
        recorder.on_complete(QUEUE, job, _completion(10.0, 2.0, 6.0))
        assert len(trace.find("service")) == 1

    def test_cancel_marks_spans_and_records_consumed(self):
        trace, _, dispatch = _trace_with_dispatch()
        recorder = QueueSpanRecorder()
        job = _job(SpanTag(trace, dispatch))
        recorder.on_enqueue(QUEUE, job, 10.0)
        recorder.on_start(QUEUE, job, 12.0)
        recorder.on_cancel(QUEUE, job, 15.0, consumed_ms=3.0)
        (service,) = trace.find("service")
        assert service.attributes["cancelled"] is True
        assert service.attributes["consumed_ms"] == 3.0
        assert service.end_ms == 15.0
        # Terminal events drop the live entry: nothing further records.
        recorder.on_complete(QUEUE, job, _completion(10.0, 2.0, 5.0))
        assert len(trace.find("service")) == 1

    def test_untagged_jobs_are_ignored(self):
        recorder = QueueSpanRecorder()
        job = _job(None)
        recorder.on_enqueue(QUEUE, job, 0.0)
        recorder.on_start(QUEUE, job, 0.0)
        recorder.on_complete(QUEUE, job, _completion(0.0, 0.0, 1.0, False))
        recorder.on_cancel(QUEUE, job, 1.0, 0.0)
        assert recorder._live == {}


class TestDecomposeTrace:
    def _completed_trace(self, hedge_extra=0.0):
        trace = QueryTrace(1, "sql", 0.0)
        root = trace.begin("query", 0.0)
        pre = 3.7
        wait, service = 11.3, 29.9
        remote = (wait + service) + hedge_extra
        merge = 5.1
        response = (pre + remote) + merge
        dispatch = trace.begin_child(
            root, "dispatch", pre, server="S1",
            observed_ms=remote, queue_wait_ms=wait, service_ms=service,
            sojourn_ms=wait + service,
        )
        trace.end(dispatch, pre + remote)
        trace.end(
            root,
            response,
            status="completed",
            pre_dispatch_ms=pre,
            remote_ms=remote,
            merge_ms=merge,
            response_ms=response,
        )
        trace.finish(response)
        return trace, response

    def test_components_recombine_bit_exactly(self):
        trace, response = self._completed_trace()
        out = decompose_trace(trace)
        assert out["status"] == "completed"
        assert out["exact"] is True
        assert out["total_ms"] == response
        assert out["hedge_extra_ms"] == 0.0

    def test_hedged_critical_path_reports_extra(self):
        trace, response = self._completed_trace(hedge_extra=2.5)
        out = decompose_trace(trace)
        assert out["hedge_extra_ms"] == 2.5
        assert out["exact"] is True

    def test_critical_fragment_is_the_slowest(self):
        trace = QueryTrace(1, "sql", 0.0)
        root = trace.begin("query", 0.0)
        for wait, service in ((1.0, 2.0), (10.0, 20.0)):
            trace.begin_child(
                root, "dispatch", 0.0, server="S1",
                observed_ms=wait + service, queue_wait_ms=wait,
                service_ms=service, sojourn_ms=wait + service,
            )
        response = (0.0 + 30.0) + 0.0
        trace.end(
            root, response, status="completed", pre_dispatch_ms=0.0,
            remote_ms=30.0, merge_ms=0.0, response_ms=response,
        )
        out = decompose_trace(trace)
        assert out["queue_wait_ms"] == 10.0
        assert out["service_ms"] == 20.0

    def test_shed_trace_reports_status_and_reason(self):
        trace = QueryTrace(1, "sql", 0.0)
        root = trace.begin("query", 0.0)
        trace.end(root, 0.0, status="shed", reason="no-tokens")
        trace.finish(0.0, status="shed")
        assert decompose_trace(trace) == {
            "status": "shed",
            "reason": "no-tokens",
        }

    def test_trace_without_query_span_reports_trace_status(self):
        trace = QueryTrace(1, "sql", 0.0)
        assert decompose_trace(trace) == {"status": "running"}
