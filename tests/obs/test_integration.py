"""End-to-end: a routed federated query emits a coherent trace + metrics."""

from __future__ import annotations

import pytest

from repro.harness import build_federation
from repro.workload import TEST_SCALE

QUERY = (
    "SELECT o.priority, COUNT(*) AS cnt FROM orders o "
    "WHERE o.totalprice > 5000 GROUP BY o.priority"
)


@pytest.fixture()
def deployment(sample_databases):
    return build_federation(
        scale=TEST_SCALE, prebuilt_databases=sample_databases
    )


class TestTracedQuery:
    def test_trace_covers_the_pipeline(self, live_obs, deployment):
        result = deployment.integrator.submit(QUERY)
        trace = result.trace
        assert trace is not None
        assert trace.status == "completed"
        for name in ("decompose", "plan_enumeration", "route", "dispatch",
                     "merge"):
            assert trace.find(name), f"missing {name} span"
        assert trace.response_ms == pytest.approx(result.response_ms)

    def test_dispatch_spans_match_calibration_factors(
        self, live_obs, deployment
    ):
        # Warm-up workload so QCC learns non-trivial factors, then a
        # recalibration to fold them into the active set.
        for _ in range(6):
            deployment.integrator.submit(QUERY)
        deployment.qcc.recalibrate(deployment.clock.now)
        result = deployment.integrator.submit(QUERY)

        dispatches = result.trace.find("dispatch")
        assert dispatches
        chosen = {c.fragment.fragment_id: c for c in result.plan.choices}
        for span in dispatches:
            attrs = span.attributes
            choice = chosen[attrs["fragment"]]
            expected = deployment.qcc.factor(
                attrs["server"], choice.fragment.signature
            )
            assert attrs["calibration_factor"] == pytest.approx(expected)
            assert expected != 1.0  # the warm-up actually taught QCC
            assert attrs["estimated_total"] == pytest.approx(
                choice.estimated.total
            )
            assert attrs["observed_ms"] > 0

    def test_calibration_lookups_nest_under_plan_enumeration(
        self, live_obs, deployment
    ):
        result = deployment.integrator.submit(QUERY)
        (enumeration,) = result.trace.find("plan_enumeration")
        lookups = [
            c for c in enumeration.children if c.name == "calibration_lookup"
        ]
        assert lookups
        servers = {span.attributes["server"] for span in lookups}
        assert result.plan.servers <= servers

    def test_trace_attached_to_explain_table(self, live_obs, deployment):
        result = deployment.integrator.submit(QUERY)
        query_id = result.record.query_id
        table = deployment.integrator.explain_table
        assert table.trace_for(query_id) is result.trace

    def test_metrics_reflect_the_workload(self, live_obs, deployment):
        for _ in range(3):
            deployment.integrator.submit(QUERY)
        metrics = live_obs.metrics
        assert metrics.counter_value("ii_queries_total") == 3.0
        assert metrics.counter_value("queries_completed_total") == 3.0
        executed = sum(
            metrics.counter_value(
                "mw_fragment_executions_total", server=server
            )
            for server in ("S1", "S2", "S3")
        )
        assert executed >= 3.0
        assert metrics.histogram("ii_response_ms").count == 3

    def test_disabled_sink_leaves_result_untraced(self, deployment):
        result = deployment.integrator.submit(QUERY)
        assert result.trace is None
        assert deployment.integrator.explain_table.trace_for(
            result.record.query_id
        ) is None


class TestStalenessDropIsObservable:
    def test_fragment_factor_drop_emits_metric_and_log(
        self, live_obs, caplog
    ):
        from repro.core.calibrator import CalibratorConfig, CostCalibrator

        calibrator = CostCalibrator(CalibratorConfig(fragment_stale_cycles=2))
        for _ in range(3):
            calibrator.record("S1", "QF1", estimated_total=10.0, observed_ms=30.0)
        calibrator.recalibrate()
        assert calibrator.factor("S1", "QF1") == pytest.approx(3.0)

        with caplog.at_level("INFO", logger="repro.calibrator"):
            calibrator.recalibrate()  # stale cycle 1
            calibrator.recalibrate()  # stale cycle 2 -> drop
        assert live_obs.metrics.counter_value(
            "calibrator_fragment_factors_dropped_total", server="S1"
        ) == 1.0
        assert any(
            "falling back to" in message for message in caplog.messages
        )
