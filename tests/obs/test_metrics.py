"""Counter/gauge/histogram semantics and registry behaviour."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, percentile
from repro.obs.metrics import Histogram, NullRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("queries_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_same_key_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", server="S1")
        b = registry.counter("hits", server="S1")
        other = registry.counter("hits", server="S2")
        a.inc()
        assert b.value == 1.0
        assert other.value == 0.0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", server="S1", fragment="QF1")
        b = registry.counter("hits", fragment="QF1", server="S1")
        assert a is b


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("server_up", server="S1")
        gauge.set(1.0)
        assert gauge.value == 1.0
        gauge.dec()
        assert gauge.value == 0.0
        gauge.inc(0.5)
        assert gauge.value == 0.5


class TestHistogram:
    def test_summary_statistics(self):
        histogram = Histogram()
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 10.0
        assert histogram.mean == 2.5
        assert histogram.minimum == 1.0
        assert histogram.maximum == 4.0
        assert histogram.p50 == 2.5

    def test_percentiles_match_shared_implementation(self):
        samples = [float(v) for v in range(100, 0, -1)]
        histogram = Histogram()
        for value in samples:
            histogram.observe(value)
        ordered = sorted(samples)
        for q in (0.5, 0.95, 0.99):
            assert histogram.percentile(q) == percentile(ordered, q)

    def test_empty_histogram(self):
        histogram = Histogram()
        snap = histogram.snapshot()
        assert snap["count"] == 0
        assert snap["p95"] == 0.0
        assert histogram.mean == 0.0

    def test_bounded_ring_keeps_newest_samples(self):
        histogram = Histogram(capacity=4)
        for value in range(10):
            histogram.observe(float(value))
        # count/total still reflect every observation...
        assert histogram.count == 10
        assert histogram.total == sum(range(10))
        # ...but only the 4 newest samples are retained, oldest first.
        assert histogram.samples() == [6.0, 7.0, 8.0, 9.0]
        # min/max are all-time, not ring-bound: 0.0 was evicted from the
        # ring but is still the true minimum.
        assert histogram.minimum == 0.0
        assert histogram.maximum == 9.0

    def test_min_max_survive_ring_wraparound_in_snapshot(self):
        histogram = Histogram(capacity=2)
        for value in (5.0, -3.0, 7.0, 1.0, 2.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["min"] == -3.0
        assert snap["max"] == 7.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            Histogram(capacity=0)


class TestRegistryExport:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("queries_total").inc(3)
        registry.gauge("server_up", server="S1").set(1.0)
        registry.histogram("response_ms", server="S1").observe(12.0)
        snap = registry.snapshot()
        assert snap["counters"]["queries_total"] == 3.0
        assert snap["gauges"]["server_up{server=S1}"] == 1.0
        hist = snap["histograms"]["response_ms{server=S1}"]
        assert hist["count"] == 1
        assert hist["p99"] == 12.0

    def test_render_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("queries_total").inc()
        registry.histogram("response_ms").observe(5.0)
        rendered = registry.render()
        assert "queries_total 1" in rendered
        assert "response_ms" in rendered and "p95" in rendered

    def test_value_accessors(self):
        registry = MetricsRegistry()
        assert registry.counter_value("missing") == 0.0
        assert registry.gauge_value("missing") is None
        registry.counter("hits", server="S1").inc()
        assert registry.counter_value("hits", server="S1") == 1.0

    def test_item_accessors_sorted(self):
        registry = MetricsRegistry()
        registry.counter("hits", server="S2").inc()
        registry.counter("hits", server="S1").inc(2)
        registry.gauge("server_up", server="S1").set(1.0)
        registry.histogram("response_ms", server="S1").observe(4.0)
        counters = registry.counter_items()
        assert [key for key, _ in counters] == [
            ("hits", (("server", "S1"),)),
            ("hits", (("server", "S2"),)),
        ]
        assert counters[0][1].value == 2.0
        assert len(registry.gauge_items()) == 1
        assert len(registry.histogram_items()) == 1

    def test_unsafe_label_values_are_quoted_and_escaped(self):
        registry = MetricsRegistry()
        registry.counter("hits", server='S"1').inc()
        registry.counter("hits", server="a,b").inc()
        registry.counter("hits", server="a=b").inc()
        registry.counter("hits", server="a\\b").inc()
        registry.counter("hits", server="a\nb").inc()
        keys = list(registry.snapshot()["counters"])
        assert 'hits{server="S\\"1"}' in keys
        assert 'hits{server="a,b"}' in keys
        assert 'hits{server="a=b"}' in keys
        assert 'hits{server="a\\\\b"}' in keys
        assert 'hits{server="a\\nb"}' in keys
        # safe values keep the compact unquoted form
        registry.gauge("server_up", server="S1").set(1.0)
        assert "server_up{server=S1}" in registry.snapshot()["gauges"]


class TestNullRegistry:
    def test_records_nothing(self):
        registry = NullRegistry()
        counter = registry.counter("queries_total")
        counter.inc(100)
        registry.gauge("g").set(5.0)
        registry.histogram("h").observe(1.0)
        assert counter.value == 0.0
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_shares_instruments_across_keys(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b", server="S9")
        assert registry.histogram("a") is registry.histogram("b")
