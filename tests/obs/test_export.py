"""Exporters: Prometheus exposition grammar, Chrome trace-event schema,
and the JSONL sink."""

from __future__ import annotations

import json
import re

from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    chrome_trace_events,
    chrome_trace_json,
    escape_label_value,
    render_prometheus,
)
from repro.obs.trace import QueryTrace

# One exposition line: metric name, optional {label="value",...} block
# (escaped quotes/backslashes allowed inside values), then a number.
_PROM_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*")*\})?'
    r' -?[0-9.eE+-]+(\.[0-9]+)?$'
)


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("queries_total").inc(3)
    registry.counter("fragments_total", server="S1").inc(2)
    registry.counter("fragments_total", server="S2").inc(1)
    registry.gauge("server_up", server="S1").set(1.0)
    histogram = registry.histogram("response_ms", server="S1")
    for value in (1.0, 2.0, 3.0, 4.0, 100.0):
        histogram.observe(value)
    return registry


class TestPrometheus:
    def test_every_line_matches_the_exposition_grammar(self):
        text = render_prometheus(_sample_registry())
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                assert re.match(
                    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
                    r"(counter|gauge|summary)$",
                    line,
                )
            else:
                assert _PROM_LINE.match(line), line

    def test_type_lines_precede_families(self):
        lines = render_prometheus(_sample_registry()).splitlines()
        assert "# TYPE queries_total counter" in lines
        assert "# TYPE server_up gauge" in lines
        assert "# TYPE response_ms summary" in lines
        assert lines.index("# TYPE fragments_total counter") < lines.index(
            'fragments_total{server="S1"} 2'
        )

    def test_histograms_export_quantiles_sum_and_count(self):
        text = render_prometheus(_sample_registry())
        assert 'response_ms{server="S1",quantile="0.5"} 3' in text
        assert 'response_ms{server="S1",quantile="0.99"}' in text
        assert 'response_ms_sum{server="S1"} 110' in text
        assert 'response_ms_count{server="S1"} 5' in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("hits", server='S"1').inc()
        registry.counter("hits", server="a\\b").inc()
        registry.counter("hits", server="a\nb").inc()
        text = render_prometheus(registry)
        assert 'hits{server="S\\"1"} 1' in text
        assert 'hits{server="a\\\\b"} 1' in text
        assert 'hits{server="a\\nb"} 1' in text
        for line in text.splitlines():
            if not line.startswith("#"):
                assert _PROM_LINE.match(line), line

    def test_escape_label_value_round_trip_order(self):
        # Backslash first, so escaped quotes don't get double-escaped.
        assert escape_label_value('\\"') == '\\\\\\"'
        assert escape_label_value("plain") == "plain"

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


def _sample_trace() -> QueryTrace:
    trace = QueryTrace(7, "SELECT COUNT(*) FROM customer", 0.0)
    route = trace.begin("route", 0.0)
    trace.end(route, 1.0)
    dispatch = trace.begin("dispatch", 1.0)
    fragment = trace.begin("fragment", 1.0, server="S3")
    trace.end(fragment, 3.0)
    trace.end(dispatch, 3.5)
    trace.finish(4.0)
    return trace


class TestChromeTrace:
    def test_complete_events_have_required_fields(self):
        doc = chrome_trace_events([_sample_trace()])
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 3
        for event in complete:
            for field in ("name", "ts", "dur", "pid", "tid", "args"):
                assert field in event

    def test_timestamps_are_microseconds(self):
        doc = chrome_trace_events([_sample_trace()])
        by_name = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert by_name["fragment"]["ts"] == 1000.0
        assert by_name["fragment"]["dur"] == 2000.0
        assert by_name["route"]["dur"] == 1000.0

    def test_lanes_pid_per_query_tid_per_server(self):
        doc = chrome_trace_events([_sample_trace()])
        by_name = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert all(e["pid"] == 7 for e in by_name.values())
        assert by_name["route"]["tid"] == 0  # II lane
        assert by_name["fragment"]["tid"] == 1  # first server lane

    def test_metadata_names_process_and_threads(self):
        doc = chrome_trace_events([_sample_trace()])
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {
            (e["name"], e["tid"]): e["args"]["name"] for e in meta
        }
        assert names[("thread_name", 0)] == "II"
        assert names[("thread_name", 1)] == "S3"
        assert names[("process_name", 0)].startswith("query 7:")

    def test_long_sql_is_truncated_in_process_name(self):
        trace = QueryTrace(1, "SELECT " + "x" * 100, 0.0)
        trace.finish(1.0)
        doc = chrome_trace_events([trace])
        (process,) = [
            e for e in doc["traceEvents"] if e["name"] == "process_name"
        ]
        assert process["args"]["name"].endswith("...")
        assert len(process["args"]["name"]) < 100

    def test_json_round_trips(self):
        payload = chrome_trace_json([_sample_trace()])
        doc = json.loads(payload)
        assert isinstance(doc["traceEvents"], list)
        assert doc["traceEvents"]


class TestJsonlSink:
    def test_appends_one_record_per_line(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        sink = JsonlSink(str(path))
        sink.emit("custom", {"n": 1})
        registry = _sample_registry()
        sink.emit_metrics(registry, t_ms=42.0)
        sink.emit_trace(_sample_trace())
        assert sink.records_written == 3
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["kind"] for r in records] == [
            "custom",
            "metrics",
            "trace",
        ]
        assert records[1]["t_ms"] == 42.0
        assert records[1]["snapshot"]["counters"]["queries_total"] == 3
        assert records[2]["trace"]["query_id"] == 7
