"""Fixtures for observability tests: isolate the global sink."""

from __future__ import annotations

import pytest

import repro.obs as obs


@pytest.fixture()
def live_obs():
    """A configured observability sink, torn back down to the null sink."""
    sink = obs.configure(log_level=None)
    try:
        yield sink
    finally:
        obs.disable()
