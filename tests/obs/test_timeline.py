"""Federation timeline: recording, querying, CSV/JSON export, and the
Figure-9-style harness sweep."""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.obs.timeline import (
    NULL_TIMELINE,
    NullTimeline,
    Timeline,
    TimelineEvent,
)
from repro.harness import run_timeline
from repro.workload import TEST_SCALE


def _sample(timeline, t_ms, server="S1", factor=1.0, **overrides):
    kwargs = dict(
        live_ratio=factor,
        available=True,
        reliability_factor=1.0,
        pending_samples=1,
    )
    kwargs.update(overrides)
    timeline.sample(t_ms, server, calibration_factor=factor, **kwargs)


class TestTimelineRecorder:
    def test_records_samples_and_events(self):
        timeline = Timeline()
        _sample(timeline, 10.0, "S1", 1.5)
        timeline.event(11.0, "server-down", server="S3", detail="probe")
        assert len(timeline.samples) == 1
        assert timeline.samples[0].calibration_factor == 1.5
        assert timeline.events[0] == TimelineEvent(
            11.0, "server-down", "S3", "probe", None
        )

    def test_capacity_is_bounded_newest_win(self):
        timeline = Timeline(capacity=3)
        for t in range(5):
            _sample(timeline, float(t))
            timeline.event(float(t), "tick")
        assert [s.t_ms for s in timeline.samples] == [2.0, 3.0, 4.0]
        assert [e.t_ms for e in timeline.events] == [2.0, 3.0, 4.0]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Timeline(capacity=0)

    def test_server_series_filters_and_orders(self):
        timeline = Timeline()
        _sample(timeline, 1.0, "S1", 1.0)
        _sample(timeline, 1.0, "S2", 9.0)
        _sample(timeline, 2.0, "S1", 2.0, available=False)
        assert timeline.server_series("S1") == [(1.0, 1.0), (2.0, 2.0)]
        assert timeline.server_series("S1", field="available") == [
            (1.0, True),
            (2.0, False),
        ]
        assert timeline.servers() == ["S1", "S2"]

    def test_server_series_rejects_unknown_field(self):
        with pytest.raises(ValueError):
            Timeline().server_series("S1", field="nope")

    def test_events_of_filters_by_kind(self):
        timeline = Timeline()
        timeline.event(1.0, "server-down", server="S3")
        timeline.event(2.0, "recalibration", detail="cycle 1")
        assert [e.kind for e in timeline.events_of("server-down")] == [
            "server-down"
        ]


class TestTimelineExport:
    def test_to_dict_and_json(self):
        timeline = Timeline()
        _sample(timeline, 1.0, "S1", 2.0, replica_staleness_ms=5.0)
        timeline.event(2.0, "recalibration", detail="cycle 1", value=3.5)
        payload = json.loads(timeline.to_json())
        assert payload == timeline.to_dict()
        (sample,) = payload["samples"]
        assert sample["server"] == "S1"
        assert sample["replica_staleness_ms"] == 5.0
        (event,) = payload["events"]
        assert event["kind"] == "recalibration"
        assert event["value"] == 3.5

    def test_samples_csv_shape(self):
        timeline = Timeline()
        _sample(timeline, 1.0, "S1", 2.0)
        _sample(timeline, 2.0, "S2", 3.0, available=False, live_ratio=None)
        lines = timeline.samples_csv().splitlines()
        assert lines[0] == (
            "t_ms,server,calibration_factor,live_ratio,available,"
            "reliability_factor,pending_samples,replica_staleness_ms"
        )
        assert lines[1] == "1,S1,2,2,1,1,1,"
        # None renders empty, booleans render 0/1.
        assert lines[2] == "2,S2,3,,0,1,1,"

    def test_events_csv_quotes_unsafe_strings(self):
        timeline = Timeline()
        timeline.event(1.0, "note", detail='a,b "quoted"')
        lines = timeline.events_csv().splitlines()
        assert lines[0] == "t_ms,kind,server,detail,value"
        assert lines[1] == '1,note,,"a,b ""quoted""",'


class TestNullTimeline:
    def test_records_nothing(self):
        _sample(NULL_TIMELINE, 1.0)
        NULL_TIMELINE.event(1.0, "server-down")
        assert len(NULL_TIMELINE.samples) == 0
        assert len(NULL_TIMELINE.events) == 0

    def test_is_a_timeline(self):
        assert isinstance(NULL_TIMELINE, Timeline)
        assert isinstance(NULL_TIMELINE, NullTimeline)
        assert NULL_TIMELINE.samples_csv().splitlines()[0].startswith("t_ms")


class TestRunTimeline:
    @pytest.fixture()
    def sweep(self, sample_databases):
        try:
            yield run_timeline(
                scale=TEST_SCALE, databases=sample_databases
            )
        finally:
            obs.disable()

    def test_phases_cover_the_sweep(self, sweep):
        assert [name for name, _, _ in sweep.phases] == [
            "base",
            "loaded",
            "s3-outage",
            "recovered",
        ]
        for _, start, end in sweep.phases:
            assert end >= start

    def test_captures_calibration_samples_per_server(self, sweep):
        timeline = sweep.timeline
        assert timeline.servers() == ["S1", "S2", "S3"]
        for server in timeline.servers():
            series = timeline.server_series(server)
            # One sample per recalibration (one per phase boundary).
            assert len(series) == len(sweep.phases)
            assert all(factor > 0.0 for _, factor in series)

    def test_captures_availability_transitions(self, sweep):
        timeline = sweep.timeline
        downs = timeline.events_of("server-down")
        ups = timeline.events_of("server-up")
        assert any(e.server == "S3" for e in downs)
        assert any(e.server == "S3" for e in ups)
        availability = [
            up for _, up in timeline.server_series("S3", field="available")
        ]
        assert False in availability and True in availability
        # Recovery comes after the outage.
        down_t = min(e.t_ms for e in downs if e.server == "S3")
        up_t = max(e.t_ms for e in ups if e.server == "S3")
        assert up_t > down_t

    def test_records_recalibration_events(self, sweep):
        cycles = sweep.timeline.events_of("recalibration")
        assert len(cycles) == len(sweep.phases)
        assert all(e.value is not None and e.value > 0 for e in cycles)

    def test_exports(self, sweep):
        csv = sweep.samples_csv()
        assert csv.splitlines()[0].startswith("t_ms,server,")
        assert len(csv.splitlines()) == len(sweep.timeline.samples) + 1
        payload = sweep.to_dict()
        assert payload["experiment"] == "timeline"
        assert [p["name"] for p in payload["phases"]] == [
            "base",
            "loaded",
            "s3-outage",
            "recovered",
        ]
        assert len(payload["samples"]) == len(sweep.timeline.samples)
        rendered = sweep.render()
        assert "Federation timeline" in rendered
        assert "server-down" in rendered
