"""Operator profiler: counters, plan profiles, EXPLAIN ANALYZE rendering,
and row-vs-vector equivalence on real federated queries."""

from __future__ import annotations

import pytest

from repro.obs.profile import (
    NULL_PROFILER,
    OperatorProfiler,
    OperatorStats,
    PlanProfile,
    disable_profiling,
    enable_profiling,
    get_profiler,
    profiling,
    render_analyzed_plan,
)
from repro.harness import (
    DEFAULT_SERVER_SPECS,
    build_databases,
    build_federation,
)
from repro.workload import QUERY_TYPES, TEST_SCALE


@pytest.fixture(scope="module")
def engine_databases():
    """Per-engine sample databases: a server's engine is fixed at
    database construction, so each engine needs its own copy."""
    return {
        engine: build_databases(
            DEFAULT_SERVER_SPECS, TEST_SCALE, seed=7, engine=engine
        )
        for engine in ("row", "vector")
    }


class FakeNode:
    """Minimal plan-node stand-in: describe() + children() + _rows()."""

    def __init__(self, name, rows=(), children=()):
        self.name = name
        self._rows_data = list(rows)
        self._children = list(children)

    def children(self):
        return self._children

    def describe(self):
        return self.name

    def _rows(self, ctx):
        yield from self._rows_data

    def _rows_batched(self, ctx):
        if self._rows_data:
            yield list(self._rows_data)


class FakeMeter:
    def __init__(self):
        self.total_ms = 0.0


class FakeCtx:
    def __init__(self):
        self.meter = FakeMeter()


class TestOperatorStats:
    def test_to_dict_reports_wall_in_ms(self):
        stats = OperatorStats()
        stats.invocations = 2
        stats.rows_out = 10
        stats.batches = 1
        stats.wall_s = 0.5
        stats.meter_ms = 7.0
        assert stats.to_dict() == {
            "invocations": 2,
            "rows_out": 10,
            "batches": 1,
            "wall_ms": 500.0,
            "meter_ms": 7.0,
        }


class TestProfilerWrappers:
    def test_profile_rows_counts_rows_and_invocations(self):
        profiler = OperatorProfiler()
        node = FakeNode("scan", rows=[1, 2, 3])
        ctx = FakeCtx()
        assert list(profiler.profile_rows(node, ctx)) == [1, 2, 3]
        assert list(profiler.profile_rows(node, ctx)) == [1, 2, 3]
        stats = profiler.capture().stats_for(node)
        assert stats.invocations == 2
        assert stats.rows_out == 6
        assert stats.batches == 0

    def test_profile_batches_counts_batches(self):
        profiler = OperatorProfiler()
        node = FakeNode("scan", rows=[1, 2, 3])
        ctx = FakeCtx()
        batches = list(profiler.profile_batches(node, ctx))
        assert batches == [[1, 2, 3]]
        stats = profiler.capture().stats_for(node)
        assert stats.rows_out == 3
        assert stats.batches == 1

    def test_meter_delta_attributed_to_node(self):
        profiler = OperatorProfiler()
        ctx = FakeCtx()

        class Charging(FakeNode):
            def _rows(self, inner_ctx):
                for row in self._rows_data:
                    inner_ctx.meter.total_ms += 2.0
                    yield row

        node = Charging("scan", rows=[1, 2])
        list(profiler.profile_rows(node, ctx))
        stats = profiler.capture().stats_for(node)
        assert stats.meter_ms == pytest.approx(4.0)

    def test_partial_consumption_still_records_on_close(self):
        profiler = OperatorProfiler()
        node = FakeNode("scan", rows=[1, 2, 3, 4])
        stream = profiler.profile_rows(node, FakeCtx())
        next(stream)
        next(stream)
        stream.close()
        stats = profiler.capture().stats_for(node)
        assert stats.rows_out == 2

    def test_reset_clears_entries(self):
        profiler = OperatorProfiler()
        node = FakeNode("scan", rows=[1])
        list(profiler.profile_rows(node, FakeCtx()))
        profiler.reset()
        assert len(profiler.capture()) == 0

    def test_null_profiler_passes_through(self):
        node = FakeNode("scan", rows=[1, 2])
        assert list(NULL_PROFILER.profile_rows(node, FakeCtx())) == [1, 2]
        assert len(NULL_PROFILER._entries) == 0


class TestGlobalState:
    def test_default_is_null(self):
        assert get_profiler() is NULL_PROFILER

    def test_enable_disable_cycle(self):
        profiler = enable_profiling()
        try:
            assert get_profiler() is profiler
            assert profiler is not NULL_PROFILER
        finally:
            disable_profiling()
        assert get_profiler() is NULL_PROFILER

    def test_context_manager_restores_null(self):
        with profiling() as profiler:
            assert get_profiler() is profiler
        assert get_profiler() is NULL_PROFILER


class TestPlanProfile:
    def _tree(self):
        leaf_a = FakeNode("leaf_a")
        leaf_b = FakeNode("leaf_b")
        join = FakeNode("join", children=[leaf_a, leaf_b])
        stats = {}
        for node, rows, meter in (
            (leaf_a, 10, 2.0),
            (leaf_b, 5, 3.0),
            (join, 8, 9.0),
        ):
            s = OperatorStats()
            s.invocations = 1
            s.rows_out = rows
            s.meter_ms = meter
            stats[id(node)] = (node, s)
        return join, leaf_a, leaf_b, PlanProfile(stats)

    def test_roots_excludes_descendants(self):
        join, leaf_a, leaf_b, profile = self._tree()
        assert profile.roots() == [join]

    def test_rows_in_sums_children(self):
        join, leaf_a, _, profile = self._tree()
        assert profile.rows_in(join) == 15
        assert profile.rows_in(leaf_a) is None

    def test_self_time_is_inclusive_minus_children(self):
        join, leaf_a, _, profile = self._tree()
        assert profile.self_meter_ms(join) == pytest.approx(4.0)
        assert profile.self_meter_ms(leaf_a) == pytest.approx(2.0)

    def test_to_dict_nests_children(self):
        join, _, _, profile = self._tree()
        payload = profile.to_dict()
        (plan,) = payload["plans"]
        assert plan["operator"] == "join"
        assert plan["rows_in"] == 15
        assert [c["operator"] for c in plan["children"]] == [
            "leaf_a",
            "leaf_b",
        ]


class TestRenderAnalyzedPlan:
    def test_annotates_actuals_and_never_executed(self):
        executed = FakeNode("scan")
        skipped = FakeNode("pruned")
        root = FakeNode("join", children=[executed, skipped])
        stats = OperatorStats()
        stats.invocations = 1
        stats.rows_out = 4
        entries = {
            id(root): (root, stats),
            id(executed): (executed, stats),
        }
        rendered = render_analyzed_plan(root, PlanProfile(entries))
        lines = rendered.splitlines()
        assert lines[0].startswith("join (actual rows=4")
        assert lines[1].startswith("  scan (actual rows=4")
        assert lines[2] == "  pruned (never executed)"

    def test_estimate_column_included_when_given(self):
        node = FakeNode("scan")
        stats = OperatorStats()
        stats.invocations = 1
        profile = PlanProfile({id(node): (node, stats)})

        class Cost:
            rows = 7.0
            total = 1.5

        rendered = render_analyzed_plan(
            node, profile, estimate=lambda n: Cost()
        )
        assert "(est rows=7 total=1.50)" in rendered

    def test_estimate_errors_degrade_gracefully(self):
        node = FakeNode("scan")
        profile = PlanProfile({})

        def broken(n):
            raise RuntimeError("no estimator for leaf")

        rendered = render_analyzed_plan(node, profile, estimate=broken)
        assert rendered == "scan (never executed)"


class TestEngineEquivalence:
    """The acceptance-criteria check: identical per-operator row counts
    whichever engine executed the plan."""

    def _profiled_counts(self, engine_databases, engine, sql):
        deployment = build_federation(
            scale=TEST_SCALE,
            prebuilt_databases=engine_databases[engine],
            engine=engine,
        )
        with profiling():
            result = deployment.integrator.submit(sql)
        assert result.profile is not None
        counts = sorted(
            (node.describe(), stats.rows_out)
            for node, stats in result.profile.operators()
        )
        return counts, result

    @pytest.mark.parametrize(
        "template", QUERY_TYPES, ids=[t.name for t in QUERY_TYPES]
    )
    def test_row_and_vector_profiles_agree(
        self, engine_databases, template
    ):
        sql = template.instance(0).sql
        row_counts, row_result = self._profiled_counts(
            engine_databases, "row", sql
        )
        vec_counts, vec_result = self._profiled_counts(
            engine_databases, "vector", sql
        )
        assert row_counts == vec_counts
        assert sorted(map(tuple, row_result.rows)) == sorted(
            map(tuple, vec_result.rows)
        )
        # The vector engine streams batches; the row engine never does.
        assert all(
            stats.batches == 0
            for _, stats in row_result.profile.operators()
        )
        assert any(
            stats.batches > 0
            for _, stats in vec_result.profile.operators()
        )

    def test_result_profile_attached_and_queryable(self, engine_databases):
        sql = QUERY_TYPES[0].instance(0).sql
        _, result = self._profiled_counts(engine_databases, "vector", sql)
        profile = result.profile
        roots = profile.roots()
        # Fragment plans plus the II merge plan.
        assert result.merge_plan in roots
        merge_stats = profile.stats_for(result.merge_plan)
        assert merge_stats.rows_out == result.row_count

    def test_disabled_profiling_attaches_nothing(self, sample_databases):
        deployment = build_federation(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        result = deployment.integrator.submit(
            QUERY_TYPES[0].instance(0).sql
        )
        assert result.profile is None
