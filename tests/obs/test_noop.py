"""The no-op sink: default state, configure/disable, and overhead."""

from __future__ import annotations

import timeit

import repro.obs as obs
from repro.obs import NULL_REGISTRY, NULL_TRACER, MetricsRegistry


class TestGlobalState:
    def test_default_sink_is_null(self):
        sink = obs.get_obs()
        assert sink.enabled is False
        assert sink.metrics is NULL_REGISTRY
        assert sink.tracer is NULL_TRACER

    def test_configure_then_disable_round_trip(self):
        sink = obs.configure(log_level=None)
        try:
            assert obs.get_obs() is sink
            assert sink.enabled is True
            assert isinstance(sink.metrics, MetricsRegistry)
            assert sink.metrics is not NULL_REGISTRY
        finally:
            obs.disable()
        assert obs.get_obs().metrics is NULL_REGISTRY

    def test_halves_are_independently_selectable(self):
        try:
            sink = obs.configure(metrics=True, tracing=False, log_level=None)
            assert sink.metrics is not NULL_REGISTRY
            assert sink.tracer is NULL_TRACER
            sink = obs.configure(metrics=False, tracing=True, log_level=None)
            assert sink.metrics is NULL_REGISTRY
            assert sink.tracer is not NULL_TRACER
        finally:
            obs.disable()

    def test_trace_event_without_current_trace_is_safe(self):
        sink = obs.get_obs()
        assert sink.current_trace() is None
        sink.trace_event("calibration_lookup", 0.0, server="S1")


class TestNullSinkBehaviour:
    def test_null_sink_accepts_the_full_hot_path_surface(self):
        sink = obs.get_obs()
        sink.metrics.counter("ii_queries_total").inc()
        sink.metrics.histogram("ii_response_ms", server="S1").observe(3.0)
        sink.metrics.gauge("server_up", server="S1").set(1.0)
        trace = sink.tracer.start(1, "SELECT 1", 0.0)
        span = trace.begin("dispatch", 0.0, server="S1")
        trace.end(span, 1.0, observed_ms=1.0)
        sink.tracer.finish(trace, 1.0)
        assert sink.metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert sink.tracer.last() is None

    def test_null_sink_overhead_is_small(self):
        """One null instrumentation round must stay in the sub-µs range.

        A federated query makes on the order of ten observation calls;
        this guards against the null path accidentally growing real work
        (allocation, formatting, sample storage).  The bound is loose —
        it catches order-of-magnitude regressions, not jitter.
        """
        sink = obs.get_obs()

        def one_round():
            sink.metrics.counter("ii_queries_total").inc()
            sink.metrics.histogram("ii_response_ms").observe(1.0)
            trace = sink.tracer.start(1, "q", 0.0)
            span = trace.begin("dispatch", 0.0)
            trace.end(span, 1.0)
            sink.tracer.finish(trace, 1.0)

        rounds = 2000
        seconds = min(
            timeit.repeat(one_round, number=rounds, repeat=3)
        )
        per_round_us = seconds / rounds * 1e6
        assert per_round_us < 50.0, f"null sink round took {per_round_us:.1f}µs"
