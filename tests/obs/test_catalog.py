"""The committed metric catalog must match the live instrumentation."""

from pathlib import Path

from repro.obs.catalog import CATALOG_PATH, catalog_lines, check

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestMetricCatalog:
    def test_committed_catalog_matches_live_families(self):
        problems = check(REPO_ROOT / CATALOG_PATH)
        assert problems == [], (
            "metric catalog drift; regenerate with "
            "`PYTHONPATH=src python -m repro.obs.catalog > "
            "docs/metrics_catalog.txt`"
        )

    def test_catalog_lines_are_sorted_and_well_formed(self):
        lines = catalog_lines()
        assert lines == sorted(set(lines))
        for line in lines:
            kind, family = line.split(" ", 1)
            assert kind in ("counter", "gauge", "histogram"), line
            assert family == family.strip()

    def test_new_surface_families_are_catalogued(self):
        lines = "\n".join(catalog_lines())
        for family in (
            "counter admission_decisions_total{klass,outcome}",
            "counter slo_alerts_total{klass,window}",
            "counter trace_spans_dropped_total",
            "gauge slo_compliance{klass}",
            "histogram sched_sojourn_ms{server}",
        ):
            assert family in lines
