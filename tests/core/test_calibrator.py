"""Unit tests for calibration factor learning."""

import pytest

from repro.core import CalibratorConfig, CostCalibrator, IICalibrator
from repro.sqlengine import PlanCost


SIG = "SELECT * FROM t WHERE x > ?"


def _calibrator(**kwargs):
    return CostCalibrator(CalibratorConfig(**kwargs))


class TestFactorResolution:
    def test_default_is_one(self):
        assert _calibrator().factor("S1") == 1.0
        assert _calibrator().factor("S1", SIG) == 1.0

    def test_initial_factor_used_before_history(self):
        calibrator = _calibrator()
        calibrator.set_initial_factor("S1", 1.8)
        assert calibrator.factor("S1") == 1.8

    def test_server_factor_after_recalibration(self):
        calibrator = _calibrator()
        calibrator.record("S1", SIG, 10.0, 25.0)
        assert calibrator.factor("S1") == 1.0  # not folded yet
        calibrator.recalibrate()
        assert calibrator.factor("S1") == pytest.approx(2.5)

    def test_fragment_factor_preferred(self):
        calibrator = _calibrator()
        calibrator.record("S1", SIG, 10.0, 30.0)
        calibrator.record("S1", SIG, 10.0, 30.0)
        calibrator.record("S1", "other", 10.0, 10.0)
        calibrator.recalibrate()
        assert calibrator.factor("S1", SIG) == pytest.approx(3.0)
        # unseen fragment falls back to the blended per-server factor
        assert calibrator.factor("S1", "unseen") == pytest.approx(70.0 / 30.0)

    def test_min_fragment_samples_gate(self):
        calibrator = _calibrator(min_fragment_samples=3)
        calibrator.record("S1", SIG, 10.0, 50.0)
        calibrator.record("S1", SIG, 10.0, 50.0)
        calibrator.recalibrate()
        # 2 samples < 3: fragment factor not trusted, server factor used
        assert calibrator.factor("S1", SIG) == pytest.approx(5.0)

    def test_clamping(self):
        calibrator = _calibrator(max_factor=4.0)
        calibrator.record("S1", SIG, 1.0, 1000.0)
        calibrator.record("S1", SIG, 1.0, 1000.0)
        calibrator.recalibrate()
        assert calibrator.factor("S1", SIG) == 4.0

    def test_calibrate_scales_cost(self):
        calibrator = _calibrator()
        calibrator.record("S1", SIG, 10.0, 20.0)
        calibrator.recalibrate()
        cost = PlanCost(first_tuple=1.0, total=10.0, rows=5.0)
        calibrated = calibrator.calibrate(cost, "S1", SIG)
        assert calibrated.total == pytest.approx(20.0)
        assert calibrated.rows == 5.0


class TestCycleSemantics:
    def test_cycle_consumes_samples(self):
        calibrator = _calibrator()
        calibrator.record("S1", SIG, 10.0, 50.0)
        calibrator.record("S1", SIG, 10.0, 50.0)
        calibrator.recalibrate()
        assert calibrator.factor("S1", SIG) == pytest.approx(5.0)
        # A new regime: one cycle of fresh data fully replaces the factor.
        calibrator.record("S1", SIG, 10.0, 10.0)
        calibrator.record("S1", SIG, 10.0, 10.0)
        calibrator.recalibrate()
        assert calibrator.factor("S1", SIG) == pytest.approx(1.0)

    def test_factor_retained_without_new_samples(self):
        calibrator = _calibrator(fragment_stale_cycles=10)
        calibrator.record("S1", SIG, 10.0, 50.0)
        calibrator.record("S1", SIG, 10.0, 50.0)
        calibrator.recalibrate()
        calibrator.recalibrate()
        assert calibrator.factor("S1", SIG) == pytest.approx(5.0)

    def test_stale_fragment_factor_expires(self):
        calibrator = _calibrator(fragment_stale_cycles=2)
        calibrator.record("S1", SIG, 10.0, 50.0)
        calibrator.record("S1", SIG, 10.0, 50.0)
        calibrator.record_probe("S1", 10.0, 12.0)
        calibrator.recalibrate()
        assert calibrator.factor("S1", SIG) == pytest.approx(5.0)
        calibrator.record_probe("S1", 10.0, 12.0)
        calibrator.recalibrate()  # stale cycle 1
        calibrator.record_probe("S1", 10.0, 12.0)
        calibrator.recalibrate()  # stale cycle 2 -> expired
        # falls back to the probe-fed per-server factor
        assert calibrator.factor("S1", SIG) == pytest.approx(1.2)

    def test_probe_feeds_server_history_only(self):
        calibrator = _calibrator()
        calibrator.record_probe("S1", 10.0, 30.0)
        calibrator.recalibrate()
        assert calibrator.factor("S1") == pytest.approx(3.0)
        assert calibrator.factor("S1", SIG) == pytest.approx(3.0)  # fallback

    def test_max_drift(self):
        calibrator = _calibrator()
        assert calibrator.max_drift() == 1.0  # no history
        calibrator.record("S1", SIG, 10.0, 10.0)
        calibrator.recalibrate()  # active factor 1.0, history drained
        calibrator.record("S1", SIG, 10.0, 40.0)  # live ratio 4.0
        assert calibrator.max_drift() == pytest.approx(4.0)

    def test_max_drift_symmetric(self):
        calibrator = _calibrator()
        calibrator.record("S1", SIG, 10.0, 40.0)
        calibrator.recalibrate()  # active 4.0
        calibrator.record("S1", SIG, 10.0, 10.0)  # live 1.0
        assert calibrator.max_drift() == pytest.approx(4.0)

    def test_volatility_reporting(self):
        calibrator = _calibrator()
        calibrator.record("S1", SIG, 10.0, 10.0)
        calibrator.record("S1", SIG, 10.0, 90.0)
        assert calibrator.volatility("S1") > 0.5
        assert calibrator.max_volatility() > 0.5
        assert calibrator.volatility("unknown") == 0.0

    def test_sample_count(self):
        calibrator = _calibrator()
        assert calibrator.sample_count("S1") == 0
        calibrator.record("S1", SIG, 1.0, 1.0)
        assert calibrator.sample_count("S1") == 1


class TestIICalibrator:
    def test_learns_workload_factor(self):
        ii = IICalibrator(min_samples=2)
        assert ii.factor == 1.0
        ii.record(10.0, 15.0)
        ii.record(10.0, 15.0)
        ii.recalibrate()
        assert ii.factor == pytest.approx(1.5)

    def test_below_min_samples_keeps_previous(self):
        ii = IICalibrator(min_samples=3)
        ii.record(10.0, 90.0)
        ii.recalibrate()
        assert ii.factor == 1.0

    def test_cycle_consumes(self):
        ii = IICalibrator(min_samples=1)
        ii.record(10.0, 30.0)
        ii.recalibrate()
        ii.record(10.0, 10.0)
        ii.recalibrate()
        assert ii.factor == pytest.approx(1.0)

    def test_volatility(self):
        ii = IICalibrator()
        ii.record(1.0, 1.0)
        ii.record(1.0, 3.0)
        assert ii.volatility() > 0


class TestClampBounds:
    """Regression tests for configurable clamp bounds."""

    def test_ii_calibrator_honors_custom_bounds(self):
        ii = IICalibrator(min_samples=1, min_factor=0.5, max_factor=2.0)
        ii.record(10.0, 1000.0)  # raw ratio 100
        ii.recalibrate()
        assert ii.factor == pytest.approx(2.0)
        ii.record(1000.0, 10.0)  # raw ratio 0.01
        ii.recalibrate()
        assert ii.factor == pytest.approx(0.5)

    def test_ii_calibrator_rejects_invalid_bounds(self):
        with pytest.raises(ValueError):
            IICalibrator(min_factor=0.0)
        with pytest.raises(ValueError):
            IICalibrator(min_factor=2.0, max_factor=1.0)

    def test_max_drift_clamps_live_ratio(self):
        # A wild observation outside the clamp range must not report
        # drift a recalibration could never close: both the active
        # factor and the live ratio saturate at max_factor.
        calibrator = _calibrator(min_factor=0.5, max_factor=2.0)
        calibrator.record("S1", SIG, 10.0, 1000.0)  # raw ratio 100
        calibrator.recalibrate()  # active clamps to 2.0
        assert calibrator.factor("S1") == pytest.approx(2.0)
        calibrator.record("S1", SIG, 10.0, 1000.0)
        assert calibrator.max_drift() == pytest.approx(1.0)

    def test_max_drift_still_sees_real_divergence(self):
        calibrator = _calibrator(min_factor=0.5, max_factor=10.0)
        calibrator.record("S1", SIG, 10.0, 10.0)
        calibrator.recalibrate()  # active 1.0
        calibrator.record("S1", SIG, 10.0, 40.0)  # live 4.0, inside range
        assert calibrator.max_drift() == pytest.approx(4.0)
