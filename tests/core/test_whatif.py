"""Unit tests for the simulated federated system (what-if planning)."""

import pytest

from repro.core import WhatIfPlanner
from repro.fed import enumerate_global_plans, decompose
from repro.harness.deployment import build_replica_federation
from repro.sqlengine import DEFAULT_COST_PARAMETERS
from repro.workload import TEST_SCALE


Q6 = (
    "SELECT o.priority, COUNT(*) AS n FROM orders o "
    "JOIN lineitem l ON o.orderkey = l.orderkey GROUP BY o.priority"
)


@pytest.fixture(scope="module")
def replica_deployment():
    return build_replica_federation(scale=TEST_SCALE, with_qcc=False)


@pytest.fixture()
def planner(replica_deployment):
    return WhatIfPlanner(
        registry=replica_deployment.registry,
        meta_wrapper=replica_deployment.meta_wrapper,
        ii_profile=replica_deployment.integrator.profile,
        params=DEFAULT_COST_PARAMETERS,
    )


class TestDerivation:
    def test_explain_calls_equal_server_product(self, planner):
        # Q6 has two fragments with two candidate servers each: the
        # paper's "execute Q6 in the explain mode only four times".
        result = planner.derive_global_plans(Q6, 0.0)
        assert result.explain_calls == 4
        assert len(result.masked_combinations) == 4

    def test_winners_sorted_and_renumbered(self, planner):
        result = planner.derive_global_plans(Q6, 0.0)
        totals = [p.total_cost for p in result.plans]
        assert totals == sorted(totals)
        assert [p.plan_id for p in result.plans] == [
            f"p{i+1}" for i in range(len(result.plans))
        ]

    def test_each_winner_on_distinct_server_combination(self, planner):
        result = planner.derive_global_plans(Q6, 0.0)
        combos = [tuple(sorted(p.servers)) for p in result.plans]
        assert len(combos) == len(set(combos))

    def test_matches_direct_enumeration_per_server_set(
        self, planner, replica_deployment
    ):
        """The masked-compile trick finds, for each server combination,
        the same winner the full enumeration would rank for that set."""
        whatif = planner.derive_global_plans(Q6, 0.0)
        decomposed = decompose(Q6, replica_deployment.registry)
        options = {
            f.fragment_id: replica_deployment.meta_wrapper.compile_fragment(
                f, 0.0
            )
            for f in decomposed.fragments
        }
        full = enumerate_global_plans(
            decomposed,
            options,
            replica_deployment.integrator.profile,
            DEFAULT_COST_PARAMETERS,
            keep=100,
        )
        for plan in whatif.plans:
            same_set = [p for p in full if p.servers == plan.servers]
            assert same_set
            cheapest = min(p.total_cost for p in same_set)
            assert plan.total_cost == pytest.approx(cheapest)


class TestExclusion:
    def test_high_factor_servers_pruned(self, replica_deployment):
        factors = {"S1": 1.0, "R1": 50.0, "S2": 1.0, "R2": 1.0}
        planner = WhatIfPlanner(
            registry=replica_deployment.registry,
            meta_wrapper=replica_deployment.meta_wrapper,
            ii_profile=replica_deployment.integrator.profile,
            params=DEFAULT_COST_PARAMETERS,
            factor_lookup=lambda server: factors.get(server, 1.0),
            exclude_factor_threshold=10.0,
        )
        result = planner.derive_global_plans(Q6, 0.0)
        assert result.explain_calls == 2  # R1 pruned: 1 x 2 combinations
        assert all("R1" not in p.servers for p in result.plans)
