"""Unit tests for availability tracking and the calibration cycle."""

import pytest

from repro.core import (
    AvailabilityMonitor,
    CalibrationCycleController,
    CycleConfig,
)


class TestAvailabilityMonitor:
    def test_starts_available(self):
        monitor = AvailabilityMonitor(["S1", "S2"])
        assert monitor.is_available("S1", 0.0)
        assert monitor.down_servers() == []

    def test_error_marks_down_immediately(self):
        monitor = AvailabilityMonitor(["S1"])
        monitor.record_error("S1", 10.0)
        assert not monitor.is_available("S1", 11.0)
        assert monitor.down_servers() == ["S1"]

    def test_success_restores(self):
        monitor = AvailabilityMonitor(["S1"])
        monitor.record_error("S1", 10.0)
        monitor.record_success("S1", 20.0)
        assert monitor.is_available("S1", 21.0)

    def test_probe_recovery(self):
        monitor = AvailabilityMonitor(["S1"])
        monitor.record_error("S1", 10.0)
        monitor.record_probe("S1", 20.0, rtt_ms=12.0)
        assert monitor.is_available("S1", 21.0)
        assert monitor.probe_rtt("S1") == 12.0

    def test_failed_probe_marks_down(self):
        monitor = AvailabilityMonitor(["S1"])
        monitor.record_probe("S1", 20.0, rtt_ms=None)
        assert not monitor.is_available("S1", 21.0)

    def test_unknown_server_tracked_lazily(self):
        monitor = AvailabilityMonitor([])
        assert monitor.is_available("new", 0.0)
        monitor.record_error("new", 1.0)
        assert not monitor.is_available("new", 2.0)

    def test_snapshot(self):
        monitor = AvailabilityMonitor(["S1", "S2"])
        monitor.record_error("S2", 0.0)
        assert monitor.snapshot() == {"S1": True, "S2": False}


class TestReliabilityFactor:
    def test_perfect_server_has_unit_factor(self):
        monitor = AvailabilityMonitor(["S1"])
        for t in range(10):
            monitor.record_success("S1", float(t))
        assert monitor.reliability_factor("S1") == 1.0

    def test_flaky_server_penalised(self):
        monitor = AvailabilityMonitor(["S1"])
        for t in range(10):
            if t % 2 == 0:
                monitor.record_error("S1", float(t))
            else:
                monitor.record_success("S1", float(t))
        # 50% success -> expected attempts 2 -> factor 2 at weight 1
        assert monitor.reliability_factor("S1") == pytest.approx(2.0)

    def test_weight_scales_penalty(self):
        monitor = AvailabilityMonitor(["S1"], reliability_weight=0.5)
        monitor.record_error("S1", 0.0)
        monitor.record_success("S1", 1.0)
        assert monitor.reliability_factor("S1") == pytest.approx(1.5)

    def test_no_history_is_unit(self):
        assert AvailabilityMonitor(["S1"]).reliability_factor("S1") == 1.0

    def test_all_failures_bounded(self):
        monitor = AvailabilityMonitor(["S1"])
        for t in range(70):
            monitor.record_error("S1", float(t))
        assert monitor.reliability_factor("S1") <= 1 + (1 / 0.05 - 1)


class TestCycleController:
    def test_target_volatility_gives_base(self):
        controller = CalibrationCycleController(
            CycleConfig(base_interval_ms=1000.0, target_volatility=0.25)
        )
        assert controller.next_interval(0.25) == pytest.approx(1000.0)

    def test_high_volatility_shortens(self):
        controller = CalibrationCycleController(
            CycleConfig(base_interval_ms=1000.0, target_volatility=0.25)
        )
        assert controller.next_interval(0.5) == pytest.approx(500.0)

    def test_low_volatility_lengthens(self):
        controller = CalibrationCycleController(
            CycleConfig(
                base_interval_ms=1000.0,
                target_volatility=0.25,
                max_interval_ms=3000.0,
            )
        )
        assert controller.next_interval(0.125) == pytest.approx(2000.0)

    def test_zero_volatility_maxes_out(self):
        controller = CalibrationCycleController(
            CycleConfig(base_interval_ms=1000.0, max_interval_ms=9000.0)
        )
        assert controller.next_interval(0.0) == 9000.0

    def test_clamping(self):
        config = CycleConfig(
            base_interval_ms=1000.0,
            min_interval_ms=500.0,
            max_interval_ms=2000.0,
        )
        controller = CalibrationCycleController(config)
        assert controller.next_interval(100.0) == 500.0
        assert controller.next_interval(1e-9) == 2000.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CycleConfig(base_interval_ms=10.0, min_interval_ms=20.0)
        with pytest.raises(ValueError):
            CycleConfig(target_volatility=0.0)
