"""Tests for the data placement advisor (the paper's future-work item)."""

import pytest

from repro.core import PlacementAdvisor, apply_recommendation
from repro.core.placement import _nicknames_of
from repro.fed import FederationError
from repro.harness import ServerSpec, build_federation
from repro.workload import QT2, TEST_SCALE


def _partial_specs():
    """Three servers: S1 slow+hot, S2 slow, S3 fast — with `lineitem` and
    `product` placed ONLY on S1/S2 so QT2 cannot use S3 until replicated."""
    return (
        ServerSpec("S1", 1.0, 1.0, 0.7, 0.7, 8.0, 80.0),
        ServerSpec("S2", 1.0, 1.0, 0.7, 0.7, 8.0, 80.0),
        ServerSpec("S3", 2.5, 2.5, 0.3, 0.3, 3.0, 150.0),
    )


@pytest.fixture()
def partial_deployment():
    deployment = build_federation(specs=_partial_specs(), scale=TEST_SCALE)
    # Rebuild the registry with `lineitem`/`product` absent from S3.
    from repro.fed import NicknameRegistry

    registry = NicknameRegistry()
    for name in deployment.registry.nicknames():
        table = deployment.servers["S1"].database.catalog.lookup(name)
        registry.register(name, "S1", name, table_def=table)
        registry.register(name, "S2", name)
        if name not in ("lineitem", "product"):
            registry.register(name, "S3", name)
    deployment.registry = registry
    deployment.integrator.registry = registry
    # Remove the physical tables from S3 so the placement apply is real.
    for table_name in ("lineitem", "product"):
        deployment.servers["S3"].database.storage.drop_table(table_name)
    return deployment


class TestNicknameExtraction:
    def test_single_table(self):
        assert _nicknames_of("SELECT a FROM orders WHERE a > 1") == ("orders",)

    def test_join(self):
        names = _nicknames_of(
            "SELECT o.a FROM orders o JOIN lineitem l ON o.k = l.k"
        )
        assert names == ("orders", "lineitem")

    def test_deduplicated(self):
        names = _nicknames_of("SELECT a.x FROM t a, t b WHERE a.x = b.x")
        assert names == ("t",)


class TestAdvisor:
    def _warm(self, deployment, passes=2):
        instance = QT2.instance(0)
        deployment.set_load({"S1": 0.8, "S2": 0.8, "S3": 0.0})
        for _ in range(4 * passes):
            deployment.integrator.submit(instance.sql, label="QT2")
        deployment.qcc.probe_servers(deployment.clock.now)
        deployment.qcc.recalibrate(deployment.clock.now)

    def test_nickname_loads_aggregate_runtime_log(self, partial_deployment):
        self._warm(partial_deployment)
        loads = PlacementAdvisor(
            partial_deployment.registry,
            partial_deployment.meta_wrapper,
            partial_deployment.qcc,
        ).nickname_loads()
        names = {l.nickname for l in loads}
        assert "lineitem" in names
        assert all(l.observed_ms > 0 for l in loads)

    def test_recommends_replicating_hot_table_to_cheap_server(
        self, partial_deployment
    ):
        self._warm(partial_deployment)
        advisor = PlacementAdvisor(
            partial_deployment.registry,
            partial_deployment.meta_wrapper,
            partial_deployment.qcc,
            factor_gap=1.1,
        )
        recommendations = advisor.recommend()
        assert recommendations, "expected at least one recommendation"
        top = recommendations[0]
        assert top.target == "S3"
        assert top.nickname in ("lineitem", "product")
        assert top.expected_benefit_ms > 0
        assert "replicate" in top.describe()

    def test_no_recommendation_when_gap_too_small(self, partial_deployment):
        self._warm(partial_deployment)
        advisor = PlacementAdvisor(
            partial_deployment.registry,
            partial_deployment.meta_wrapper,
            partial_deployment.qcc,
            factor_gap=1e9,
        )
        assert advisor.recommend() == []


class TestApply:
    def test_apply_copies_data_and_registers(self, partial_deployment):
        deployment = partial_deployment
        self_warm = TestAdvisor()._warm
        self_warm(deployment)
        advisor = PlacementAdvisor(
            deployment.registry,
            deployment.meta_wrapper,
            deployment.qcc,
            factor_gap=1.1,
        )
        top = advisor.recommend()[0]
        copied = apply_recommendation(
            top, deployment.registry, deployment.servers
        )
        assert copied > 0
        assert "S3" in deployment.registry.servers_for(top.nickname)
        target_db = deployment.servers["S3"].database
        assert target_db.row_count(top.nickname) == copied

    def test_apply_improves_routing(self, partial_deployment):
        deployment = partial_deployment
        TestAdvisor()._warm(deployment)
        instance = QT2.instance(0)
        before = deployment.integrator.submit(instance.sql, label="QT2")
        assert "S3" not in before.plan.servers

        advisor = PlacementAdvisor(
            deployment.registry,
            deployment.meta_wrapper,
            deployment.qcc,
            factor_gap=1.1,
        )
        for recommendation in advisor.recommend():
            apply_recommendation(
                recommendation, deployment.registry, deployment.servers
            )
        # After replicating both QT2 tables, S3 becomes routable & wins.
        if deployment.registry.common_servers(
            ["lineitem", "product"]
        ) >= {"S3"}:
            after = deployment.integrator.submit(instance.sql, label="QT2")
            assert "S3" in after.plan.servers
            assert after.response_ms < before.response_ms

    def test_apply_rejects_duplicate(self, partial_deployment):
        deployment = partial_deployment
        TestAdvisor()._warm(deployment)
        advisor = PlacementAdvisor(
            deployment.registry,
            deployment.meta_wrapper,
            deployment.qcc,
            factor_gap=1.1,
        )
        top = advisor.recommend()[0]
        apply_recommendation(top, deployment.registry, deployment.servers)
        with pytest.raises(FederationError):
            apply_recommendation(top, deployment.registry, deployment.servers)
