"""Unit tests for the QCC facade."""

import math

import pytest

from repro.core import QCCConfig, QueryCostCalibrator
from repro.core.routing import generalize_signature
from repro.sqlengine import PlanCost


def _qcc(**kwargs):
    return QueryCostCalibrator(["S1", "S2", "S3"], QCCConfig(**kwargs))


COST = PlanCost(first_tuple=1.0, total=10.0, rows=5.0)


class TestGeneralizeSignature:
    def test_numbers_replaced(self):
        assert generalize_signature("a > 123 AND b < 4.5") == "a > ? AND b < ?"

    def test_strings_replaced(self):
        assert generalize_signature("s = 'x''y'") == "s = ?"

    def test_identifiers_with_digits_kept(self):
        assert generalize_signature("SELECT c1 FROM t2") == "SELECT c1 FROM t2"

    def test_two_instances_share_signature(self):
        a = "SELECT x FROM t WHERE p > 5000"
        b = "SELECT x FROM t WHERE p > 6125.5"
        assert generalize_signature(a) == generalize_signature(b)


class TestCalibrateInterface:
    def test_unknown_server_factor_is_one(self):
        qcc = _qcc()
        calibrated = qcc.calibrate("S1", "sig", COST)
        assert calibrated.total == COST.total

    def test_learned_factor_applied(self):
        qcc = _qcc()
        qcc.record_execution(
            server="S1",
            fragment_signature="SELECT x FROM t WHERE p > 100",
            plan_signature="plan",
            estimated=COST,
            observed_ms=30.0,
            t_ms=0.0,
        )
        qcc.recalibrate(0.0)
        calibrated = qcc.calibrate(
            "S1", "SELECT x FROM t WHERE p > 999", COST
        )
        # generalized signature matches -> per-fragment factor 3.0
        assert calibrated.total == pytest.approx(30.0)

    def test_generalization_can_be_disabled(self):
        qcc = _qcc(generalize_signatures=False)
        qcc.record_execution(
            server="S1",
            fragment_signature="SELECT x FROM t WHERE p > 100",
            plan_signature="plan",
            estimated=COST,
            observed_ms=30.0,
            t_ms=0.0,
        )
        qcc.recalibrate(0.0)
        other = qcc.calibrate("S1", "SELECT x FROM t WHERE p > 999", COST)
        # distinct signature: falls back to the per-server factor (also 3)
        assert other.total == pytest.approx(30.0)
        assert qcc.factor("S1", "SELECT x FROM t WHERE p > 100") == (
            pytest.approx(3.0)
        )

    def test_down_server_gets_infinite_cost(self):
        qcc = _qcc()
        qcc.record_error("S2", 0.0)
        assert math.isinf(qcc.calibrate("S2", "sig", COST).total)
        assert not qcc.is_available("S2", 1.0)

    def test_reliability_penalty_folded_in(self):
        qcc = _qcc()
        qcc.record_error("S1", 0.0)
        qcc.record_execution(
            server="S1",
            fragment_signature="sig",
            plan_signature="p",
            estimated=COST,
            observed_ms=10.0,
            t_ms=1.0,
        )
        qcc.recalibrate(1.0)
        calibrated = qcc.calibrate("S1", "sig2", COST)
        assert calibrated.total > COST.total  # 50% success rate penalty

    def test_reliability_can_be_disabled(self):
        qcc = _qcc(enable_reliability=False)
        qcc.record_error("S1", 0.0)
        qcc.record_execution(
            server="S1",
            fragment_signature="sig",
            plan_signature="p",
            estimated=COST,
            observed_ms=10.0,
            t_ms=1.0,
        )
        qcc.recalibrate(1.0)
        assert qcc.calibrate("S1", "sig2", COST).total == pytest.approx(10.0)


class TestTick:
    def test_recalibration_fires_on_schedule(self):
        qcc = _qcc()
        base = qcc.config.cycle.base_interval_ms
        qcc.tick(base - 1.0)
        assert qcc.recalibrations == 0
        qcc.tick(base + 1.0)
        assert qcc.recalibrations == 1

    def test_cycle_interval_adapts(self):
        qcc = _qcc()
        for observed in (10.0, 90.0, 20.0, 80.0):
            qcc.record_execution(
                server="S1",
                fragment_signature="sig",
                plan_signature="p",
                estimated=COST,
                observed_ms=observed,
                t_ms=0.0,
            )
        qcc.recalibrate(0.0)
        volatile_interval = qcc.cycle.current_interval_ms
        assert volatile_interval < qcc.config.cycle.max_interval_ms

    def test_drift_triggers_early_recalibration(self):
        qcc = _qcc(drift_trigger_ratio=2.0)
        # Establish an active factor of 1.0.
        qcc.record_execution(
            server="S1", fragment_signature="sig", plan_signature="p",
            estimated=COST, observed_ms=10.0, t_ms=0.0,
        )
        qcc.recalibrate(0.0)
        before = qcc.recalibrations
        # A 5x environment shift, well before the next timer deadline.
        qcc.record_execution(
            server="S1", fragment_signature="sig", plan_signature="p",
            estimated=COST, observed_ms=50.0, t_ms=1.0,
        )
        qcc.tick(2.0)
        assert qcc.drift_recalibrations == 1
        assert qcc.recalibrations == before + 1
        assert qcc.factor("S1") == pytest.approx(5.0)

    def test_drift_trigger_disabled(self):
        qcc = _qcc(drift_trigger_ratio=0.0)
        qcc.record_execution(
            server="S1", fragment_signature="sig", plan_signature="p",
            estimated=COST, observed_ms=10.0, t_ms=0.0,
        )
        qcc.recalibrate(0.0)
        qcc.record_execution(
            server="S1", fragment_signature="sig", plan_signature="p",
            estimated=COST, observed_ms=500.0, t_ms=1.0,
        )
        qcc.tick(2.0)
        assert qcc.drift_recalibrations == 0

    def test_small_drift_does_not_trigger(self):
        qcc = _qcc(drift_trigger_ratio=2.0)
        qcc.record_execution(
            server="S1", fragment_signature="sig", plan_signature="p",
            estimated=COST, observed_ms=10.0, t_ms=0.0,
        )
        qcc.recalibrate(0.0)
        qcc.record_execution(
            server="S1", fragment_signature="sig", plan_signature="p",
            estimated=COST, observed_ms=15.0, t_ms=1.0,
        )
        qcc.tick(2.0)
        assert qcc.drift_recalibrations == 0

    def test_probe_disabled_with_zero_interval(self):
        qcc = _qcc(probe_interval_ms=0.0)
        qcc.tick(1e9)
        assert qcc.probes == 0

    def test_probe_without_meta_wrapper_is_noop(self):
        qcc = _qcc()
        assert qcc.probe_servers(0.0) == {}


class TestRecommendGlobal:
    def test_passthrough_when_balancing_disabled(self):
        from tests.core.test_load_balance import _decomposed, _global_plan

        qcc = _qcc(enable_global_balancing=False)
        plans = [
            _global_plan("p1", ["S1"], 10.0),
            _global_plan("p2", ["S2"], 10.1),
        ]
        picks = {
            qcc.recommend_global(_decomposed(), plans, 0.0).plan_id
            for _ in range(4)
        }
        assert picks == {"p1"}

    def test_rotation_when_enabled(self):
        from tests.core.test_load_balance import _decomposed, _global_plan

        qcc = _qcc(enable_global_balancing=True)
        plans = [
            _global_plan("p1", ["S1"], 10.0),
            _global_plan("p2", ["S2"], 10.1),
        ]
        picks = {
            qcc.recommend_global(_decomposed(), plans, 0.0).plan_id
            for _ in range(4)
        }
        assert picks == {"p1", "p2"}


class TestIiInterface:
    def test_ii_factor_learned(self):
        qcc = _qcc()
        assert qcc.ii_factor() == 1.0
        qcc.record_ii_execution(10.0, 14.0, 0.0)
        qcc.record_ii_execution(10.0, 14.0, 0.0)
        qcc.recalibrate(0.0)
        assert qcc.ii_factor() == pytest.approx(1.4)


class TestStatus:
    def test_status_snapshot(self):
        qcc = _qcc()
        qcc.record_error("S3", 0.0)
        status = qcc.status()
        assert status["down_servers"] == ["S3"]
        assert status["ii_factor"] == 1.0
        assert "cycle_interval_ms" in status
        assert "recent_decisions" in status


class TestDecisionLog:
    def test_down_and_up_transitions_logged(self):
        qcc = _qcc()
        qcc.record_error("S3", 10.0)
        kinds = [d.kind for d in qcc.decision_log]
        assert kinds == ["server-down"]
        # Repeated errors on an already-down server do not spam the log.
        qcc.record_error("S3", 11.0)
        assert len(qcc.decision_log) == 1
        qcc.availability.record_probe("S3", 20.0, rtt_ms=5.0)

    def test_factor_shift_logged(self):
        qcc = _qcc()
        qcc.record_execution(
            server="S1", fragment_signature="sig", plan_signature="p",
            estimated=COST, observed_ms=10.0, t_ms=0.0,
        )
        qcc.recalibrate(0.0)
        qcc.record_execution(
            server="S1", fragment_signature="sig", plan_signature="p",
            estimated=COST, observed_ms=50.0, t_ms=1.0,
        )
        qcc.recalibrate(1.0)
        shifts = [d for d in qcc.decision_log if d.kind == "factor-shift"]
        assert shifts
        assert "S1" in shifts[-1].detail

    def test_small_shift_not_logged(self):
        qcc = _qcc()
        qcc.record_execution(
            server="S1", fragment_signature="sig", plan_signature="p",
            estimated=COST, observed_ms=10.0, t_ms=0.0,
        )
        qcc.recalibrate(0.0)
        baseline = len(
            [d for d in qcc.decision_log if d.kind == "factor-shift"]
        )
        qcc.record_execution(
            server="S1", fragment_signature="sig", plan_signature="p",
            estimated=COST, observed_ms=11.0, t_ms=1.0,
        )
        qcc.recalibrate(1.0)
        shifts = [d for d in qcc.decision_log if d.kind == "factor-shift"]
        assert len(shifts) == baseline  # 1.0 -> 1.1 is below the 1.5x gate

    def test_log_bounded(self):
        qcc = _qcc()
        for t in range(600):
            qcc.record_error("S1", float(t))
            qcc.availability.record_success("S1", float(t) + 0.5)
        assert len(qcc.decision_log) <= 256
