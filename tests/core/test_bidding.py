"""Tests for execution-time bid solicitation (paper §6 future work)."""

import pytest

from repro.core import BidBroker, BiddingQcc
from repro.fed import decompose
from repro.harness import build_federation
from repro.workload import QT2, TEST_SCALE


@pytest.fixture()
def deployment(sample_databases):
    return build_federation(
        scale=TEST_SCALE, prebuilt_databases=sample_databases
    )


def _options(deployment, sql):
    decomposed = decompose(sql, deployment.registry)
    fragment = decomposed.fragments[0]
    options = deployment.meta_wrapper.compile_fragment(fragment, 0.0)
    return fragment, options


class TestBidBroker:
    def test_one_bid_per_server(self, deployment):
        _, options = _options(deployment, QT2.instance(0).sql)
        broker = BidBroker(deployment.meta_wrapper)
        winner, _ = broker.solicit(options[0], options, 0.0)
        auction = broker.auctions[-1]
        servers = [bid.option.server for bid in auction.bids]
        assert sorted(servers) == ["S1", "S2", "S3"]

    def test_winner_is_lowest_bid(self, deployment):
        _, options = _options(deployment, QT2.instance(0).sql)
        broker = BidBroker(deployment.meta_wrapper)
        winner, _ = broker.solicit(options[0], options, 0.0)
        auction = broker.auctions[-1]
        assert auction.winner.amount_ms == min(
            bid.amount_ms for bid in auction.bids
        )
        assert winner is auction.winner.option

    def test_live_load_changes_the_winner(self, deployment):
        """A load spike *after* compilation — invisible to calibration —
        is caught by the auction's live probes."""
        _, options = _options(deployment, QT2.instance(0).sql)
        broker = BidBroker(deployment.meta_wrapper)
        baseline_winner, _ = broker.solicit(options[0], options, 0.0)
        assert baseline_winner.server == "S3"  # fastest machine

        deployment.set_load({"S3": 0.94})
        spiked_winner, _ = broker.solicit(options[0], options, 0.0)
        assert spiked_winner.server != "S3"

    def test_down_server_excluded(self, deployment):
        from repro.sim import OutageSchedule

        deployment.servers["S3"].availability = OutageSchedule([(0.0, 1e9)])
        _, options = _options(deployment, QT2.instance(0).sql)
        broker = BidBroker(deployment.meta_wrapper)
        winner, _ = broker.solicit(options[0], options, 10.0)
        assert winner.server != "S3"
        servers = [b.option.server for b in broker.auctions[-1].bids]
        assert "S3" not in servers

    def test_quote_overhead_accumulates(self, deployment):
        _, options = _options(deployment, QT2.instance(0).sql)
        broker = BidBroker(deployment.meta_wrapper, quote_cost_ms=2.0)
        _, overhead = broker.solicit(options[0], options, 0.0)
        assert overhead == pytest.approx(6.0)  # three servers quoted

    def test_no_bids_falls_back_to_chosen(self, deployment):
        from repro.sim import OutageSchedule

        # Compile while healthy, then lose every server before dispatch.
        _, options = _options(deployment, QT2.instance(0).sql)
        for server in deployment.servers.values():
            server.availability = OutageSchedule([(0.0, 1e9)])
        broker = BidBroker(deployment.meta_wrapper)
        winner, _ = broker.solicit(options[0], options, 10.0)
        assert winner is options[0]
        assert broker.auctions == []


class TestBiddingQcc:
    def test_end_to_end_routing_follows_auctions(self, deployment):
        broker = BidBroker(deployment.meta_wrapper)
        bidding = BiddingQcc(deployment.qcc, broker)
        deployment.meta_wrapper.attach_qcc(bidding)

        instance = QT2.instance(0)
        result = deployment.integrator.submit(instance.sql, label="QT2")
        assert broker.auctions  # an auction ran for the fragment
        executed = next(iter(result.fragments.values())).option.server
        assert executed == broker.auctions[-1].winner.option.server

    def test_delegates_other_interfaces(self, deployment):
        broker = BidBroker(deployment.meta_wrapper)
        bidding = BiddingQcc(deployment.qcc, broker)
        assert bidding.ii_factor() == deployment.qcc.ii_factor()
        assert bidding.is_available("S1", 0.0)

    def test_reacts_faster_than_calibration_alone(self, deployment):
        """After an un-calibrated load spike, bidding avoids the spiked
        server on the very next query; pure calibration needs a cycle."""
        broker = BidBroker(deployment.meta_wrapper)
        bidding = BiddingQcc(deployment.qcc, broker)
        deployment.meta_wrapper.attach_qcc(bidding)
        instance = QT2.instance(0)

        first = deployment.integrator.submit(instance.sql, label="QT2")
        server_before = next(iter(first.fragments.values())).option.server
        assert server_before == "S3"

        deployment.set_load({"S3": 0.94})
        second = deployment.integrator.submit(instance.sql, label="QT2")
        server_after = next(iter(second.fragments.values())).option.server
        assert server_after != "S3"
