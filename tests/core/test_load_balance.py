"""Unit tests for fragment- and global-level load distribution."""

import pytest

from repro.core import FragmentLoadBalancer, GlobalLoadBalancer, LoadBalanceConfig
from repro.fed.decomposer import DecomposedQuery, QueryFragment
from repro.fed.global_optimizer import FragmentOption, GlobalPlan
from repro.sqlengine import Column, ColumnType, PlanCost, Schema, SeqScan
from repro.sqlengine.catalog import TableDef, TableStats
from repro.sqlengine.logical import QueryBlock
from repro.sqlengine.parser import parse


def _fragment(sql="SELECT a FROM t"):
    return QueryFragment(
        fragment_id="QF1",
        sql=sql,
        bindings=("t",),
        nicknames=("t",),
        candidate_servers=("S1", "R1"),
        output_schema=Schema((Column("a", ColumnType.INT, "t"),)),
        full_pushdown=True,
    )


def _table(name="t"):
    return TableDef(
        name=name,
        schema=Schema((Column("a", ColumnType.INT),)),
        stats=TableStats(row_count=10),
    )


def _option(server, total, fragment=None, table_name="t", predicate=None):
    fragment = fragment or _fragment()
    cost = PlanCost(1.0, total, 10.0)
    from repro.sqlengine.parser import parse_expression as pe

    plan = SeqScan(
        _table(table_name), "t",
        pe(predicate) if predicate else None,
    )
    return FragmentOption(
        fragment=fragment,
        server=server,
        plan=plan,
        estimated=cost,
        calibrated=cost,
    )


class TestFragmentBalancer:
    def _balancer(self, band=0.2, threshold=0.0):
        return FragmentLoadBalancer(
            LoadBalanceConfig(band=band, workload_threshold=threshold)
        )

    def test_rotates_across_identical_plans(self):
        balancer = self._balancer()
        fragment = _fragment()
        chosen = _option("S1", 10.0, fragment)
        siblings = [chosen, _option("R1", 11.0, fragment)]
        picks = [
            balancer.substitute(chosen, siblings, 0.0).server
            for _ in range(4)
        ]
        assert picks == ["R1", "S1", "R1", "S1"]

    def test_non_identical_plans_not_exchangeable(self):
        balancer = self._balancer()
        fragment = _fragment()
        chosen = _option("S1", 10.0, fragment)
        different = _option("R1", 10.0, fragment, predicate="t.a > 1")
        picks = {
            balancer.substitute(chosen, [chosen, different], 0.0).server
            for _ in range(4)
        }
        assert picks == {"S1"}

    def test_band_excludes_expensive_replica(self):
        balancer = self._balancer(band=0.2)
        fragment = _fragment()
        chosen = _option("S1", 10.0, fragment)
        pricey = _option("R1", 13.0, fragment)  # 30% above cheapest
        picks = {
            balancer.substitute(chosen, [chosen, pricey], 0.0).server
            for _ in range(4)
        }
        assert picks == {"S1"}

    def test_workload_threshold_gates_balancing(self):
        balancer = self._balancer(threshold=1_000.0)
        fragment = _fragment()
        chosen = _option("S1", 10.0, fragment)
        siblings = [chosen, _option("R1", 10.0, fragment)]
        # Low workload: no substitution even with a perfect replica.
        assert balancer.substitute(chosen, siblings, 0.0).server == "S1"
        # Accumulate workload beyond the threshold.
        for t in range(200):
            balancer.note_execution(fragment.signature, 10.0, float(t))
        assert (
            balancer.substitute(chosen, siblings, 200.0).server in {"S1", "R1"}
        )
        picks = {
            balancer.substitute(chosen, siblings, 200.0).server
            for _ in range(4)
        }
        assert picks == {"S1", "R1"}

    def test_workload_window_expires(self):
        config = LoadBalanceConfig(workload_threshold=50.0, window_ms=100.0)
        balancer = FragmentLoadBalancer(config)
        fragment = _fragment()
        balancer.note_execution(fragment.signature, 100.0, 0.0)
        chosen = _option("S1", 10.0, fragment)
        siblings = [chosen, _option("R1", 10.0, fragment)]
        # At t=500 the old workload has aged out of the window.
        assert balancer.substitute(chosen, siblings, 500.0).server == "S1"

    def test_cluster_membership_recorded(self):
        balancer = self._balancer()
        fragment = _fragment()
        chosen = _option("S1", 10.0, fragment)
        balancer.substitute(chosen, [chosen, _option("R1", 10.0, fragment)], 0.0)
        assert balancer.last_clusters[fragment.signature] == ["R1", "S1"]


def _global_plan(plan_id, servers, total):
    options = tuple(
        _option(server, total, _fragment(f"SELECT a FROM t{i}"))
        for i, server in enumerate(servers)
    )
    return GlobalPlan(
        plan_id=plan_id,
        choices=options,
        merge_cost=PlanCost(0.0, 0.0, 1.0),
        total_cost=total,
    )


def _decomposed(sql="SELECT a FROM t"):
    block = QueryBlock(
        relations={},
        join_edges=(),
        residual=None,
        items=(),
        output_schema=Schema(()),
    )
    return DecomposedQuery(
        statement=parse(sql),
        block=block,
        fragments=(_fragment(),),
        cross_edges=(),
    )


class TestGlobalBalancer:
    def test_rotates_over_near_cost_server_sets(self):
        balancer = GlobalLoadBalancer(LoadBalanceConfig(band=0.2))
        plans = [
            _global_plan("p1", ["S1"], 10.0),
            _global_plan("p2", ["R1"], 11.0),
            _global_plan("p3", ["S2"], 30.0),  # outside band
        ]
        decomposed = _decomposed()
        picks = [
            balancer.recommend(decomposed, plans, 0.0).plan_id
            for _ in range(4)
        ]
        assert set(picks) == {"p1", "p2"}
        assert picks[0] != picks[1]

    def test_dominated_plans_never_selected(self):
        balancer = GlobalLoadBalancer(LoadBalanceConfig(band=0.5))
        plans = [
            _global_plan("p1", ["S1"], 10.0),
            _global_plan("p2", ["S1"], 12.0),  # dominated by p1
            _global_plan("p3", ["R1"], 11.0),
        ]
        picks = {
            balancer.recommend(_decomposed(), plans, 0.0).plan_id
            for _ in range(6)
        }
        assert "p2" not in picks

    def test_threshold_returns_cheapest(self):
        balancer = GlobalLoadBalancer(
            LoadBalanceConfig(workload_threshold=1e9)
        )
        plans = [
            _global_plan("p1", ["S1"], 10.0),
            _global_plan("p2", ["R1"], 10.0),
        ]
        picks = {
            balancer.recommend(_decomposed(), plans, 0.0).plan_id
            for _ in range(4)
        }
        assert picks == {"p1"}

    def test_empty_plans_rejected(self):
        with pytest.raises(ValueError):
            GlobalLoadBalancer().recommend(_decomposed(), [], 0.0)

    def test_rotation_keyed_per_statement(self):
        balancer = GlobalLoadBalancer(LoadBalanceConfig(band=0.2))
        plans = [
            _global_plan("p1", ["S1"], 10.0),
            _global_plan("p2", ["R1"], 10.5),
        ]
        first = balancer.recommend(_decomposed("SELECT a FROM t"), plans, 0.0)
        other = balancer.recommend(_decomposed("SELECT a FROM u"), plans, 0.0)
        # independent rotation counters -> both start at the same position
        assert first.plan_id == other.plan_id
