"""Unit tests for fragment- and global-level load distribution."""

import pytest

from repro.core import FragmentLoadBalancer, GlobalLoadBalancer, LoadBalanceConfig
from repro.core.load_balance import hrw_score, rank_servers
from repro.fed.decomposer import DecomposedQuery, QueryFragment
from repro.fed.global_optimizer import FragmentOption, GlobalPlan
from repro.sqlengine import Column, ColumnType, PlanCost, Schema, SeqScan
from repro.sqlengine.catalog import TableDef, TableStats
from repro.sqlengine.logical import QueryBlock
from repro.sqlengine.parser import parse


def _fragment(sql="SELECT a FROM t"):
    return QueryFragment(
        fragment_id="QF1",
        sql=sql,
        bindings=("t",),
        nicknames=("t",),
        candidate_servers=("S1", "R1"),
        output_schema=Schema((Column("a", ColumnType.INT, "t"),)),
        full_pushdown=True,
    )


def _table(name="t"):
    return TableDef(
        name=name,
        schema=Schema((Column("a", ColumnType.INT),)),
        stats=TableStats(row_count=10),
    )


def _option(server, total, fragment=None, table_name="t", predicate=None):
    fragment = fragment or _fragment()
    cost = PlanCost(1.0, total, 10.0)
    from repro.sqlengine.parser import parse_expression as pe

    plan = SeqScan(
        _table(table_name), "t",
        pe(predicate) if predicate else None,
    )
    return FragmentOption(
        fragment=fragment,
        server=server,
        plan=plan,
        estimated=cost,
        calibrated=cost,
    )


class TestFragmentBalancer:
    def _balancer(self, band=0.2, threshold=0.0):
        return FragmentLoadBalancer(
            LoadBalanceConfig(band=band, workload_threshold=threshold)
        )

    def test_stable_affinity_across_identical_plans(self):
        """Repeated submissions of the same fragment stick to the HRW
        head of the exchangeable cluster (replica cache locality)."""
        balancer = self._balancer()
        fragment = _fragment()
        chosen = _option("S1", 10.0, fragment)
        siblings = [chosen, _option("R1", 11.0, fragment)]
        home = rank_servers(fragment.signature, ["R1", "S1"])[0]
        picks = [
            balancer.substitute(chosen, siblings, 0.0).server
            for _ in range(4)
        ]
        assert picks == [home] * 4

    def test_distinct_fragments_spread_over_cluster(self):
        """HRW spreads distinct fragment instances across the replicas
        even though each individual instance is sticky."""
        balancer = self._balancer()
        homes = set()
        for i in range(32):
            fragment = _fragment(f"SELECT a FROM t WHERE t.a = {i}")
            chosen = _option("S1", 10.0, fragment)
            siblings = [chosen, _option("R1", 10.0, fragment)]
            homes.add(balancer.substitute(chosen, siblings, 0.0).server)
        assert homes == {"S1", "R1"}

    def test_non_identical_plans_not_exchangeable(self):
        balancer = self._balancer()
        fragment = _fragment()
        chosen = _option("S1", 10.0, fragment)
        different = _option("R1", 10.0, fragment, predicate="t.a > 1")
        picks = {
            balancer.substitute(chosen, [chosen, different], 0.0).server
            for _ in range(4)
        }
        assert picks == {"S1"}

    def test_band_excludes_expensive_replica(self):
        balancer = self._balancer(band=0.2)
        fragment = _fragment()
        chosen = _option("S1", 10.0, fragment)
        pricey = _option("R1", 13.0, fragment)  # 30% above cheapest
        picks = {
            balancer.substitute(chosen, [chosen, pricey], 0.0).server
            for _ in range(4)
        }
        assert picks == {"S1"}

    def test_workload_threshold_gates_balancing(self):
        balancer = self._balancer(threshold=1_000.0)
        fragment = _fragment()
        chosen = _option("S1", 10.0, fragment)
        siblings = [chosen, _option("R1", 10.0, fragment)]
        # Low workload: no substitution even with a perfect replica.
        assert balancer.substitute(chosen, siblings, 0.0).server == "S1"
        # Accumulate workload beyond the threshold.
        for t in range(200):
            balancer.note_execution(fragment.signature, 10.0, float(t))
        home = rank_servers(fragment.signature, ["R1", "S1"])[0]
        picks = {
            balancer.substitute(chosen, siblings, 200.0).server
            for _ in range(4)
        }
        assert picks == {home}

    def test_workload_window_expires(self):
        config = LoadBalanceConfig(workload_threshold=50.0, window_ms=100.0)
        balancer = FragmentLoadBalancer(config)
        fragment = _fragment()
        balancer.note_execution(fragment.signature, 100.0, 0.0)
        chosen = _option("S1", 10.0, fragment)
        siblings = [chosen, _option("R1", 10.0, fragment)]
        # At t=500 the old workload has aged out of the window.
        assert balancer.substitute(chosen, siblings, 500.0).server == "S1"

    def test_cluster_membership_recorded(self):
        balancer = self._balancer()
        fragment = _fragment()
        chosen = _option("S1", 10.0, fragment)
        balancer.substitute(chosen, [chosen, _option("R1", 10.0, fragment)], 0.0)
        # Recorded in HRW rank order: head = home, second = hedge backup.
        assert balancer.last_clusters[fragment.signature] == rank_servers(
            fragment.signature, ["R1", "S1"]
        )

    def test_last_clusters_lru_bounded(self):
        balancer = FragmentLoadBalancer(LoadBalanceConfig(max_tracked=8))
        for i in range(32):
            fragment = _fragment(f"SELECT a FROM t WHERE t.a = {i}")
            chosen = _option("S1", 10.0, fragment)
            balancer.substitute(
                chosen, [chosen, _option("R1", 10.0, fragment)], 0.0
            )
            balancer.note_execution(fragment.signature, 10.0, 0.0)
        assert len(balancer.last_clusters) <= 8
        assert len(balancer._tracker) <= 8


class TestRendezvousHashing:
    def test_deterministic_across_calls(self):
        assert hrw_score("sig", "S1") == hrw_score("sig", "S1")
        assert rank_servers("sig", ["S1", "R1", "S2"]) == rank_servers(
            "sig", ["S2", "R1", "S1"]
        )

    def test_distinct_keys_differ(self):
        scores = {hrw_score(f"sig-{i}", "S1") for i in range(64)}
        assert len(scores) == 64

    def test_churn_moves_about_one_nth(self):
        """Removing one of n servers reassigns only the fragments whose
        head it was (~1/n) and never disturbs the others."""
        servers = ["S1", "S2", "S3", "S4"]
        signatures = [f"SELECT a FROM t WHERE t.a = {i}" for i in range(400)]
        before = {s: rank_servers(s, servers)[0] for s in signatures}
        shrunk = [s for s in servers if s != "S2"]
        after = {s: rank_servers(s, shrunk)[0] for s in signatures}
        moved = [s for s in signatures if before[s] != after[s]]
        # Every move is an eviction from the removed server...
        assert all(before[s] == "S2" for s in moved)
        # ...and everything previously on S2 moved (nothing else did).
        assert len(moved) == sum(1 for s in signatures if before[s] == "S2")
        # Roughly 1/4 of assignments lived on the removed server.
        assert 0.15 < len(moved) / len(signatures) < 0.35

    def test_spread_is_roughly_uniform(self):
        servers = ["S1", "S2", "S3", "S4"]
        counts = {name: 0 for name in servers}
        for i in range(400):
            counts[rank_servers(f"frag-{i}", servers)[0]] += 1
        for name in servers:
            assert 60 <= counts[name] <= 140


def _global_plan(plan_id, servers, total):
    options = tuple(
        _option(server, total, _fragment(f"SELECT a FROM t{i}"))
        for i, server in enumerate(servers)
    )
    return GlobalPlan(
        plan_id=plan_id,
        choices=options,
        merge_cost=PlanCost(0.0, 0.0, 1.0),
        total_cost=total,
    )


def _decomposed(sql="SELECT a FROM t"):
    block = QueryBlock(
        relations={},
        join_edges=(),
        residual=None,
        items=(),
        output_schema=Schema(()),
    )
    return DecomposedQuery(
        statement=parse(sql),
        block=block,
        fragments=(_fragment(),),
        cross_edges=(),
    )


class TestGlobalBalancer:
    def test_rotates_over_near_cost_server_sets(self):
        balancer = GlobalLoadBalancer(LoadBalanceConfig(band=0.2))
        plans = [
            _global_plan("p1", ["S1"], 10.0),
            _global_plan("p2", ["R1"], 11.0),
            _global_plan("p3", ["S2"], 30.0),  # outside band
        ]
        decomposed = _decomposed()
        picks = [
            balancer.recommend(decomposed, plans, 0.0).plan_id
            for _ in range(4)
        ]
        assert set(picks) == {"p1", "p2"}
        assert picks[0] != picks[1]

    def test_dominated_plans_never_selected(self):
        balancer = GlobalLoadBalancer(LoadBalanceConfig(band=0.5))
        plans = [
            _global_plan("p1", ["S1"], 10.0),
            _global_plan("p2", ["S1"], 12.0),  # dominated by p1
            _global_plan("p3", ["R1"], 11.0),
        ]
        picks = {
            balancer.recommend(_decomposed(), plans, 0.0).plan_id
            for _ in range(6)
        }
        assert "p2" not in picks

    def test_threshold_returns_cheapest(self):
        balancer = GlobalLoadBalancer(
            LoadBalanceConfig(workload_threshold=1e9)
        )
        plans = [
            _global_plan("p1", ["S1"], 10.0),
            _global_plan("p2", ["R1"], 10.0),
        ]
        picks = {
            balancer.recommend(_decomposed(), plans, 0.0).plan_id
            for _ in range(4)
        }
        assert picks == {"p1"}

    def test_empty_plans_rejected(self):
        with pytest.raises(ValueError):
            GlobalLoadBalancer().recommend(_decomposed(), [], 0.0)

    def test_tracker_records_chosen_plan_cost(self):
        """Regression: rotation may pick a costlier cluster member — the
        workload tracker must record the *chosen* plan's cost, not the
        cheapest's."""
        balancer = GlobalLoadBalancer(LoadBalanceConfig(band=0.2))
        plans = [
            _global_plan("p1", ["S1"], 10.0),
            _global_plan("p2", ["R1"], 11.0),
        ]
        decomposed = _decomposed()
        key = decomposed.statement.sql()
        chosen_costs = [
            balancer.recommend(decomposed, plans, 0.0).total_cost
            for _ in range(4)
        ]
        assert set(chosen_costs) == {10.0, 11.0}  # rotation really rotates
        assert balancer._tracker.workload(key, 0.0) == sum(chosen_costs)

    def test_threshold_counts_current_submission(self):
        """The submission being decided counts toward its own gate (the
        tracker used to be fed before the check) — a single submission
        whose cheapest cost meets the threshold balances immediately."""
        balancer = GlobalLoadBalancer(
            LoadBalanceConfig(band=0.2, workload_threshold=10.0)
        )
        plans = [
            _global_plan("p1", ["S1"], 10.0),
            _global_plan("p2", ["R1"], 10.5),
        ]
        decomposed = _decomposed()
        first = balancer.recommend(decomposed, plans, 0.0)
        second = balancer.recommend(decomposed, plans, 0.0)
        assert {first.plan_id, second.plan_id} == {"p1", "p2"}

    def test_counters_and_clusters_lru_bounded(self):
        balancer = GlobalLoadBalancer(LoadBalanceConfig(max_tracked=8))
        plans = [
            _global_plan("p1", ["S1"], 10.0),
            _global_plan("p2", ["R1"], 10.5),
        ]
        for i in range(32):
            balancer.recommend(
                _decomposed(f"SELECT a FROM t WHERE a = {i}"), plans, 0.0
            )
        assert len(balancer._counters) <= 8
        assert len(balancer.last_clusters) <= 8
        assert len(balancer._tracker) <= 8

    def test_rotation_keyed_per_statement(self):
        balancer = GlobalLoadBalancer(LoadBalanceConfig(band=0.2))
        plans = [
            _global_plan("p1", ["S1"], 10.0),
            _global_plan("p2", ["R1"], 10.5),
        ]
        first = balancer.recommend(_decomposed("SELECT a FROM t"), plans, 0.0)
        other = balancer.recommend(_decomposed("SELECT a FROM u"), plans, 0.0)
        # independent rotation counters -> both start at the same position
        assert first.plan_id == other.plan_id
