"""The paper's worked example, with its exact numbers.

Figures 3-5 walk one calibration cycle: fragments QF1 (at S1) and QF2
(at S2) are estimated at 5 each; the observed response times are 8 and
7, so the per-server factors become 1.6 and 1.4.  A new fragment QF3
then arrives for S2 with estimate 8, and MW returns the *calibrated*
cost 11.2 = 8 x 1.4 instead.

Figure 6 does the same at the II level with the workload factor.
"""

import pytest

from repro.core import CalibratorConfig, CostCalibrator, IICalibrator
from repro.core.routing import QCCConfig, QueryCostCalibrator
from repro.sqlengine import PlanCost


class TestFigure345Walkthrough:
    def test_factors_match_paper(self):
        calibrator = CostCalibrator(CalibratorConfig(min_server_samples=1))
        # Runtime phase (Figure 4): estimated vs observed per fragment.
        calibrator.record("S1", "QF1", 5.0, 8.0)
        calibrator.record("S2", "QF2", 5.0, 7.0)
        calibrator.recalibrate()
        # "the calibration factors for S1 and S2 can be calculated as
        # 1.6 (i.e. 8/5) and 1.4 (i.e. 7/5) respectively"
        assert calibrator.factor("S1") == pytest.approx(1.6)
        assert calibrator.factor("S2") == pytest.approx(1.4)

    def test_unseen_fragment_calibrated_by_server_factor(self):
        calibrator = CostCalibrator(CalibratorConfig(min_server_samples=1))
        calibrator.record("S2", "QF2", 5.0, 7.0)
        calibrator.recalibrate()
        # Figure 5: "MW calibrates the cost to 11.2 by multiplying the
        # estimated cost, 8, by the per server ... factor, 1.4"
        qf3_estimate = PlanCost(first_tuple=1.0, total=8.0, rows=10.0)
        calibrated = calibrator.calibrate(qf3_estimate, "S2", "QF3")
        assert calibrated.total == pytest.approx(11.2)
        # cardinality is returned untouched: only costs are calibrated
        assert calibrated.rows == 10.0

    def test_full_qcc_facade_reproduces_walkthrough(self):
        qcc = QueryCostCalibrator(
            ["S1", "S2"],
            QCCConfig(
                calibrator=CalibratorConfig(min_server_samples=1),
                probe_interval_ms=0.0,
            ),
        )
        estimate = PlanCost(first_tuple=1.0, total=5.0, rows=10.0)
        qcc.record_execution(
            server="S1", fragment_signature="QF1", plan_signature="p1",
            estimated=estimate, observed_ms=8.0, t_ms=0.0,
        )
        qcc.record_execution(
            server="S2", fragment_signature="QF2", plan_signature="p1",
            estimated=estimate, observed_ms=7.0, t_ms=0.0,
        )
        qcc.recalibrate(0.0)
        qf3 = PlanCost(first_tuple=1.0, total=8.0, rows=10.0)
        assert qcc.calibrate("S2", "QF3", qf3).total == pytest.approx(11.2)
        # QF1 is known: its own history drives the calibration.
        qf1 = PlanCost(first_tuple=1.0, total=5.0, rows=10.0)
        assert qcc.calibrate("S1", "QF1", qf1).total == pytest.approx(8.0)


class TestFigure6Walkthrough:
    def test_ii_workload_factor(self):
        """Figure 6: II's own processing is calibrated from execution
        history — estimated global cost (built from calibrated source
        costs) vs observed end-to-end time."""
        ii = IICalibrator(min_samples=1)
        ii.record(10.0, 12.0)
        ii.record(20.0, 24.0)
        ii.recalibrate()
        assert ii.factor == pytest.approx(1.2)
