"""Tests for the calibration epoch and its bump sources."""

from repro.core import (
    AvailabilityMonitor,
    CalibrationEpoch,
    CalibratorConfig,
    CostCalibrator,
    QueryCostCalibrator,
)


class TestCalibrationEpoch:
    def test_monotonic(self):
        epoch = CalibrationEpoch()
        assert epoch.value == 0
        assert epoch.bump() == 1
        assert epoch.bump() == 2


class TestCalibratorBumps:
    def test_recalibrate_always_bumps(self):
        calibrator = CostCalibrator(CalibratorConfig())
        before = calibrator.epoch.value
        calibrator.recalibrate()  # no samples: factors unchanged
        assert calibrator.epoch.value == before + 1

    def test_initial_factor_bumps_only_on_change(self):
        calibrator = CostCalibrator(CalibratorConfig())
        calibrator.set_initial_factor("S1", 1.5)
        after_first = calibrator.epoch.value
        assert after_first > 0
        calibrator.set_initial_factor("S1", 1.5)  # no-op
        assert calibrator.epoch.value == after_first
        calibrator.set_initial_factor("S1", 2.5)
        assert calibrator.epoch.value == after_first + 1


class TestAvailabilityBumps:
    def _monitor(self):
        epoch = CalibrationEpoch()
        return AvailabilityMonitor(["S1", "S2"], epoch=epoch), epoch

    def test_error_bumps_on_down_transition(self):
        monitor, epoch = self._monitor()
        monitor.record_error("S1", 10.0)
        assert epoch.value == 1

    def test_success_bumps_on_recovery_and_rate_change(self):
        monitor, epoch = self._monitor()
        monitor.record_error("S1", 10.0)
        after_error = epoch.value
        monitor.record_success("S1", 20.0)  # back up + rate moves
        assert epoch.value > after_error

    def test_steady_successes_do_not_bump(self):
        monitor, epoch = self._monitor()
        monitor.record_success("S1", 10.0)
        monitor.record_success("S1", 20.0)
        monitor.record_success("S1", 30.0)
        assert epoch.value == 0  # success rate pinned at 1.0

    def test_probe_bumps_only_on_transition(self):
        monitor, epoch = self._monitor()
        monitor.record_probe("S1", 10.0, 5.0)  # already up
        assert epoch.value == 0
        monitor.record_probe("S1", 20.0, None)  # down transition
        assert epoch.value == 1
        monitor.record_probe("S1", 30.0, None)  # still down
        assert epoch.value == 1
        monitor.record_probe("S1", 40.0, 5.0)  # recovery
        assert epoch.value == 2


class TestQccEpoch:
    def test_shared_across_components(self):
        qcc = QueryCostCalibrator(servers=["S1", "S2"])
        assert qcc.epoch is qcc.calibrator.epoch
        assert qcc.epoch is qcc.availability.epoch

    def test_recalibrate_bumps(self):
        qcc = QueryCostCalibrator(servers=["S1", "S2"])
        before = qcc.epoch.value
        qcc.recalibrate(0.0)
        assert qcc.epoch.value > before

    def test_status_reports_epoch(self):
        qcc = QueryCostCalibrator(servers=["S1"])
        assert qcc.status()["calibration_epoch"] == qcc.epoch.value
