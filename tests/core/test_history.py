"""Unit tests for QCC's statistical primitives."""

import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Ewma, RatioHistory, RunningStats


class TestRunningStats:
    def test_matches_statistics_module(self):
        values = [3.0, 1.5, 4.0, 1.0, 5.9, 2.6]
        stats = RunningStats()
        for v in values:
            stats.update(v)
        assert stats.mean == pytest.approx(statistics.mean(values))
        assert stats.variance == pytest.approx(statistics.variance(values))
        assert stats.stddev == pytest.approx(statistics.stdev(values))

    def test_empty_and_single(self):
        stats = RunningStats()
        assert stats.variance == 0.0
        stats.update(5.0)
        assert stats.mean == 5.0
        assert stats.coefficient_of_variation == 0.0

    def test_cv(self):
        stats = RunningStats()
        for v in (10.0, 10.0, 10.0):
            stats.update(v)
        assert stats.coefficient_of_variation == 0.0

    @given(st.lists(st.floats(0.1, 1000.0), min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_never_negative_variance(self, values):
        stats = RunningStats()
        for v in values:
            stats.update(v)
        assert stats.variance >= 0.0


class TestEwma:
    def test_first_value_initialises(self):
        ewma = Ewma(0.5)
        assert ewma.value is None
        assert not ewma.initialized
        ewma.update(10.0)
        assert ewma.value == 10.0

    def test_weighting(self):
        ewma = Ewma(0.5)
        ewma.update(10.0)
        ewma.update(20.0)
        assert ewma.value == pytest.approx(15.0)

    def test_alpha_one_tracks_last(self):
        ewma = Ewma(1.0)
        ewma.update(1.0)
        ewma.update(99.0)
        assert ewma.value == 99.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Ewma(0.0)
        with pytest.raises(ValueError):
            Ewma(1.5)


class TestRatioHistory:
    def test_ratio_of_averages_not_average_of_ratios(self):
        history = RatioHistory(window=8)
        history.record(1.0, 10.0)   # ratio 10
        history.record(100.0, 100.0)  # ratio 1
        # avg-of-ratios would be 5.5; ratio-of-averages weights the big one
        assert history.ratio() == pytest.approx(110.0 / 101.0)

    def test_default_when_empty(self):
        assert RatioHistory().ratio() == 1.0
        assert RatioHistory().ratio(default=2.5) == 2.5

    def test_window_evicts_oldest(self):
        history = RatioHistory(window=2)
        history.record(1.0, 100.0)
        history.record(1.0, 2.0)
        history.record(1.0, 2.0)
        assert history.ratio() == pytest.approx(2.0)

    def test_total_recorded_monotone_through_clear(self):
        history = RatioHistory(window=4)
        history.record(1.0, 1.0)
        history.record(1.0, 1.0)
        assert history.total_recorded == 2
        history.clear()
        assert history.count == 0
        assert history.total_recorded == 2
        history.record(1.0, 1.0)
        assert history.total_recorded == 3

    def test_volatility_zero_for_constant_ratio(self):
        history = RatioHistory()
        for _ in range(5):
            history.record(2.0, 6.0)
        assert history.volatility() == pytest.approx(0.0)

    def test_volatility_positive_for_jitter(self):
        history = RatioHistory()
        history.record(1.0, 1.0)
        history.record(1.0, 5.0)
        history.record(1.0, 0.5)
        assert history.volatility() > 0.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RatioHistory().record(-1.0, 2.0)

    def test_zero_estimates_yield_default(self):
        history = RatioHistory()
        history.record(0.0, 5.0)
        assert history.ratio(default=1.0) == 1.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RatioHistory(window=0)

    @given(
        st.lists(
            st.tuples(st.floats(0.1, 100.0), st.floats(0.1, 100.0)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_ratio_bounded_by_extreme_pair_ratios(self, pairs):
        history = RatioHistory(window=64)
        for est, obs in pairs:
            history.record(est, obs)
        ratios = [obs / est for est, obs in pairs]
        assert min(ratios) - 1e-9 <= history.ratio() <= max(ratios) + 1e-9
