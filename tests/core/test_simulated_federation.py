"""Tests for the simulated federated system (virtual tables)."""

import pytest

from repro.core import WhatIfPlanner, build_simulated_meta_wrapper
from repro.fed import decompose
from repro.harness.deployment import build_replica_federation
from repro.sqlengine import Database
from repro.workload import TEST_SCALE

Q6 = (
    "SELECT o.priority, COUNT(*) AS n FROM orders o "
    "JOIN lineitem l ON o.orderkey = l.orderkey GROUP BY o.priority"
)


@pytest.fixture(scope="module")
def deployment():
    return build_replica_federation(scale=TEST_SCALE)


class TestStatsOnlyCopy:
    def test_explain_matches_source(self, deployment):
        source = deployment.servers["S1"].database
        clone = Database.stats_only_copy(source)
        sql = "SELECT COUNT(*) FROM orders WHERE totalprice > 5000"
        source_best = source.explain(sql)[0]
        clone_best = clone.explain(sql)[0]
        assert clone_best.cost.total == pytest.approx(source_best.cost.total)
        assert clone_best.plan.signature() == source_best.plan.signature()

    def test_clone_holds_no_data(self, deployment):
        source = deployment.servers["S1"].database
        clone = Database.stats_only_copy(source)
        with pytest.raises(Exception):
            clone.run("SELECT COUNT(*) FROM orders")

    def test_clone_stats_independent(self, deployment):
        source = deployment.servers["S1"].database
        clone = Database.stats_only_copy(source)
        original = source.catalog.lookup("orders").stats.row_count
        clone.catalog.lookup("orders").stats.row_count = 1
        assert source.catalog.lookup("orders").stats.row_count == original


class TestSimulatedMetaWrapper:
    def test_estimates_match_live_compilation(self, deployment):
        simulated = build_simulated_meta_wrapper(deployment)
        decomposed = decompose(Q6, deployment.registry)
        for fragment in decomposed.fragments:
            live = deployment.meta_wrapper.compile_fragment(fragment, 0.0)
            virtual = simulated.compile_fragment(fragment, 0.0)
            live_costs = sorted(o.estimated.total for o in live)
            virtual_costs = sorted(o.estimated.total for o in virtual)
            assert virtual_costs == pytest.approx(live_costs)

    def test_virtual_execution_impossible(self, deployment):
        simulated = build_simulated_meta_wrapper(deployment)
        decomposed = decompose(Q6, deployment.registry)
        options = simulated.compile_fragment(decomposed.fragments[0], 0.0)
        with pytest.raises(Exception):
            simulated.execute_option(options[0], 0.0)

    def test_calibration_view_applies_factors(self, deployment):
        qcc = deployment.qcc
        # Teach QCC a strong per-server factor on S1.
        from repro.sqlengine import PlanCost

        qcc.record_execution(
            server="S1",
            fragment_signature="sig",
            plan_signature="p",
            estimated=PlanCost(1.0, 10.0, 1.0),
            observed_ms=40.0,
            t_ms=0.0,
        )
        qcc.recalibrate(0.0)
        simulated = build_simulated_meta_wrapper(deployment)
        decomposed = decompose(Q6, deployment.registry)
        options = simulated.compile_fragment(decomposed.fragments[0], 0.0)
        s1_options = [o for o in options if o.server == "S1"]
        for option in s1_options:
            assert option.calibrated.total > option.estimated.total

    def test_whatif_records_do_not_pollute_qcc(self, deployment):
        before = deployment.qcc.compile_records
        planner = WhatIfPlanner.from_deployment(deployment)
        planner.derive_global_plans(Q6, 0.0)
        assert deployment.qcc.compile_records == before


class TestPlannerFromDeployment:
    def test_derives_same_plan_space_as_live_mw(self, deployment):
        live = WhatIfPlanner(
            registry=deployment.registry,
            meta_wrapper=deployment.meta_wrapper,
            ii_profile=deployment.integrator.profile,
            params=deployment.integrator.params,
        ).derive_global_plans(Q6, 0.0)
        simulated = WhatIfPlanner.from_deployment(
            deployment, use_calibration=False
        ).derive_global_plans(Q6, 0.0)
        assert simulated.explain_calls == live.explain_calls
        live_sets = sorted(tuple(sorted(p.servers)) for p in live.plans)
        sim_sets = sorted(tuple(sorted(p.servers)) for p in simulated.plans)
        assert sim_sets == live_sets
