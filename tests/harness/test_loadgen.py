"""Load generator: determinism, shed confinement, CLI artifact."""

import json

import pytest

from repro.cli import main
from repro.fed.admission import PriorityClass
from repro.harness.loadgen import run_loadgen


@pytest.fixture(scope="module")
def overloaded(sample_databases):
    """One run hot enough to force sheds (shared read-only in-module)."""
    return run_loadgen(
        arrival="poisson",
        rate_qps=80.0,
        duration_ms=1_500.0,
        seed=11,
        prebuilt_databases=sample_databases,
    )


class TestLoadGen:
    def test_verdicts_are_byte_identical(self, overloaded, sample_databases):
        rerun = run_loadgen(
            arrival="poisson",
            rate_qps=80.0,
            duration_ms=1_500.0,
            seed=11,
            prebuilt_databases=sample_databases,
        )
        assert overloaded.verdict_lines() == rerun.verdict_lines()

    def test_header_carries_arrival_spec(self, overloaded):
        header = json.loads(overloaded.verdict_lines()[0])
        assert header["record"] == "loadgen-run"
        assert header["arrival"] == {
            "process": "poisson",
            "rate_qps": 80.0,
        }
        assert [c["name"] for c in header["classes"]] == [
            "gold",
            "silver",
            "batch",
        ]

    def test_every_query_has_a_verdict_line(self, overloaded):
        lines = overloaded.verdict_lines()
        assert len(lines) == overloaded.offered + 1
        statuses = [json.loads(line)["status"] for line in lines[1:]]
        assert statuses.count("completed") == len(overloaded.completed)
        assert statuses.count("shed") == len(overloaded.sheds)

    def test_sheds_confined_to_lowest_class_with_evidence(self, overloaded):
        assert overloaded.sheds, "80 q/s at test scale must shed batch"
        by_class = overloaded.sheds_by_class()
        assert by_class["gold"] == 0 and by_class["silver"] == 0
        assert by_class["batch"] == len(overloaded.sheds)
        assert overloaded.shed_violations() == []
        assert not overloaded.failures

    def test_summary_shapes(self, overloaded):
        summary = overloaded.summary()
        assert summary["offered"] == overloaded.offered
        assert set(summary["per_class"]) == {"gold", "silver", "batch"}
        assert summary["sustained_qps"] > 0
        assert summary["shed_violations"] == []

    def test_bursty_process_differs_from_poisson(
        self, overloaded, sample_databases
    ):
        bursty = run_loadgen(
            arrival="bursty",
            rate_qps=80.0,
            duration_ms=1_500.0,
            seed=11,
            prebuilt_databases=sample_databases,
        )
        header = json.loads(bursty.verdict_lines()[0])
        assert header["arrival"]["process"] == "bursty"
        # Same seed, same rate, different process: a different trace.
        assert bursty.verdict_lines() != overloaded.verdict_lines()

    def test_custom_classes_respect_weights(self, sample_databases):
        classes = (
            PriorityClass("only", rank=0, weight=1.0),
            PriorityClass("never", rank=1, weight=0.0, budget_ms=1.0),
        )
        result = run_loadgen(
            rate_qps=40.0,
            duration_ms=500.0,
            classes=classes,
            seed=5,
            prebuilt_databases=sample_databases,
        )
        assert result.offered > 0
        assert all(h.klass == "only" for h in result.handles)


class TestLoadgenCli:
    def test_cli_writes_deterministic_jsonl(self, tmp_path, capsys):
        paths = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            code = main(
                [
                    "loadgen",
                    "--qps",
                    "40",
                    "--duration",
                    "600",
                    "--seed",
                    "5",
                    "--jsonl",
                    str(path),
                ]
            )
            assert code == 0
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        out = capsys.readouterr().out
        assert "arrival=poisson@40qps" in out
        assert "Class" in out

    def test_cli_parses_class_spec(self, capsys):
        code = main(
            [
                "loadgen",
                "--qps",
                "30",
                "--duration",
                "400",
                "--classes",
                "vip=0.5:inf:inf,bulk=0.5:400:20:4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "vip" in out and "bulk" in out
