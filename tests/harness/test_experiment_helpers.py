"""Unit tests for experiment-runner helpers."""

import pytest

from repro.harness import (
    build_federation,
    dynamic_assignment,
    estimate_on_servers,
    gains_by_phase,
    observe_on_servers,
    run_phase,
    run_query,
    run_workload_once,
)
from repro.harness.experiment import PhaseOutcome, QueryOutcome
from repro.workload import PHASES, QT1, TEST_SCALE, build_workload


@pytest.fixture()
def deployment(sample_databases):
    return build_federation(
        scale=TEST_SCALE, with_qcc=False, prebuilt_databases=sample_databases
    )


class TestObservationHelpers:
    def test_observe_covers_all_servers(self, deployment):
        observations = observe_on_servers(deployment, QT1.instance(0))
        assert set(observations) == {"S1", "S2", "S3"}
        assert all(v > 0 for v in observations.values())

    def test_estimates_load_blind(self, deployment):
        base = estimate_on_servers(deployment, QT1.instance(0))
        deployment.set_load({"S3": 0.9})
        loaded = estimate_on_servers(deployment, QT1.instance(0))
        assert base == loaded

    def test_observe_skips_down_servers(self, deployment):
        from repro.sim import OutageSchedule

        deployment.servers["S2"].availability = OutageSchedule([(0.0, 1e9)])
        observations = observe_on_servers(deployment, QT1.instance(0))
        assert set(observations) == {"S1", "S3"}

    def test_dynamic_assignment_single_server(self, deployment):
        servers = dynamic_assignment(deployment, QT1.instance(0))
        assert len(servers) == 1
        assert servers[0] in {"S1", "S2", "S3"}


class TestRunners:
    def test_run_query_outcome_fields(self, deployment):
        instance = QT1.instance(0)
        outcome = run_query(deployment, instance)
        assert not outcome.failed
        assert outcome.query_type == "QT1"
        assert outcome.response_ms > 0
        assert outcome.servers

    def test_run_query_marks_failures(self, sample_databases):
        from repro.sim import OutageSchedule

        deployment = build_federation(
            scale=TEST_SCALE,
            with_qcc=False,
            prebuilt_databases=sample_databases,
            availability={
                name: OutageSchedule([(0.0, 1e9)])
                for name in ("S1", "S2", "S3")
            },
        )
        outcome = run_query(deployment, QT1.instance(0))
        assert outcome.failed
        assert outcome.servers == ()

    def test_run_workload_once_order(self, deployment):
        workload = build_workload(instances_per_type=2)
        outcomes = run_workload_once(deployment, workload)
        assert [o.instance.sql for o in outcomes] == [
            q.sql for q in workload
        ]

    def test_run_phase_sets_loads(self, deployment):
        workload = build_workload(instances_per_type=1)
        run_phase(deployment, workload, PHASES[1], load_level=0.7,
                  warmup_passes=0)
        assert deployment.servers["S3"].current_load(0.0) == 0.7
        assert deployment.servers["S1"].current_load(0.0) == 0.0


class TestPhaseOutcome:
    def _outcome(self):
        outcome = PhaseOutcome(phase=PHASES[0])
        workload = build_workload(instances_per_type=1)
        outcome.outcomes = [
            QueryOutcome(workload[0], 10.0, ("S1",), 0),
            QueryOutcome(workload[1], 20.0, ("S1",), 0),
            QueryOutcome(workload[2], 30.0, ("S2",), 0),
            QueryOutcome(workload[3], 0.0, (), 0, failed=True),
        ]
        return outcome

    def test_mean_excludes_failures(self):
        assert self._outcome().mean_response_ms == pytest.approx(20.0)

    def test_by_type(self):
        by_type = self._outcome().by_type()
        assert len(by_type) == 3  # the failed query's type is absent

    def test_server_usage(self):
        usage = self._outcome().server_usage()
        assert usage == {"S1": 2, "S2": 1}

    def test_failure_count(self):
        assert self._outcome().failure_count == 1

    def test_stats(self):
        stats = self._outcome().stats()
        assert stats.count == 3
        assert stats.maximum == 30.0


class TestGains:
    def test_gains_by_phase_alignment(self):
        base = {"Phase1": _phase_with_mean(100.0)}
        treat = {"Phase1": _phase_with_mean(60.0), "Phase9": _phase_with_mean(1.0)}
        gains = gains_by_phase(base, treat)
        assert gains == {"Phase1": pytest.approx(40.0)}


def _phase_with_mean(mean_ms):
    outcome = PhaseOutcome(phase=PHASES[0])
    instance = QT1.instance(0)
    outcome.outcomes = [QueryOutcome(instance, mean_ms, ("S1",), 0)]
    return outcome
