"""Unit tests for metrics and report rendering."""

import pytest

from repro.harness import (
    ResponseStats,
    ascii_table,
    bar_chart,
    geometric_mean,
    grouped_series,
    mean,
    percent_gain,
    percentile,
)


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 0.25) == 2.5

    def test_bounds(self):
        assert percentile([5.0], 0.99) == 5.0
        assert percentile([], 0.5) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestResponseStats:
    def test_from_samples(self):
        stats = ResponseStats.from_samples([4.0, 1.0, 3.0, 2.0])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.median == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0

    def test_empty(self):
        stats = ResponseStats.from_samples([])
        assert stats.count == 0
        assert stats.mean == 0.0


class TestGains:
    def test_percent_gain(self):
        assert percent_gain(100.0, 50.0) == 50.0
        assert percent_gain(100.0, 120.0) == -20.0
        assert percent_gain(0.0, 10.0) == 0.0

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, -5.0]) == 0.0  # ignores non-positive


class TestAsciiTable:
    def test_alignment_and_headers(self):
        text = ascii_table(
            ["name", "value"],
            [["alpha", 1.0], ["b", 123.456]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "123.46" in text

    def test_float_formatting(self):
        text = ascii_table(["x"], [[2.0]])
        assert "2.0" in text


class TestCharts:
    def test_bar_chart(self):
        text = bar_chart({"S1": 10.0, "S2": 20.0}, width=10, unit="ms")
        lines = text.splitlines()
        assert lines[0].startswith("S1")
        assert lines[1].count("#") == 10
        assert "20.0ms" in lines[1]

    def test_bar_chart_empty(self):
        assert "(empty)" in bar_chart({})

    def test_grouped_series(self):
        text = grouped_series(
            ["Base", "Load"],
            {"S1": {"Base": 1.0, "Load": 2.0}, "S2": {"Base": 3.0}},
        )
        assert "Base" in text
        assert "3.0" in text
