"""Flight-recorder artifact, admission audit surfacing, and the
`repro slo` / `--flight` / `--chrome` CLI paths."""

import json

import pytest

import repro.obs as obs
from repro.cli import main
from repro.harness.loadgen import run_loadgen


@pytest.fixture(scope="module")
def traced_run(sample_databases):
    obs.configure(metrics=True, tracing=True, log_level=None)
    try:
        yield run_loadgen(
            rate_qps=80.0,
            duration_ms=1_500.0,
            seed=11,
            prebuilt_databases=sample_databases,
        )
    finally:
        obs.disable()


class TestAdmissionAudit:
    def test_summary_itemises_per_class_evidence(self, traced_run):
        audit = traced_run.admission_summary()
        assert set(audit) == {"gold", "silver", "batch"}
        batch = audit["batch"]
        assert batch["decisions"] == (
            batch["admitted"]
            + batch["shed_no_tokens"]
            + batch["shed_over_budget"]
        )
        assert batch["shed_no_tokens"] + batch["shed_over_budget"] > 0
        assert batch["min_tokens_before"] is not None
        assert batch["max_predicted_ms"] > 0
        # Protected classes shed nothing at this load.
        for klass in ("gold", "silver"):
            info = audit[klass]
            assert info["shed_no_tokens"] == 0
            assert info["shed_over_budget"] == 0

    def test_render_and_summary_surface_the_audit(self, traced_run):
        out = traced_run.render()
        assert "admission decisions:" in out
        assert "shed violations: 0" in out
        assert traced_run.summary()["admission"] == (
            traced_run.admission_summary()
        )


class TestFlightRecord:
    def test_record_structure(self, traced_run):
        record = traced_run.flight_record()
        assert record["record"] == "flight-recorder"
        assert record["run"]["record"] == "loadgen-run"
        assert len(record["queries"]) == traced_run.offered
        statuses = {q["status"] for q in record["queries"]}
        assert statuses == {"completed", "shed"}

    def test_every_completed_query_decomposes_exactly(self, traced_run):
        for entry in traced_run.flight_record()["queries"]:
            if entry["status"] != "completed":
                assert "response_ms" not in entry
                continue
            decomposition = entry["decomposition"]
            assert decomposition["exact"] is True
            assert decomposition["total_ms"] == entry["response_ms"]
            assert entry["trace"]["spans"], "traced run must embed spans"

    def test_flight_json_is_deterministic(
        self, traced_run, sample_databases
    ):
        obs.configure(metrics=True, tracing=True, log_level=None)
        try:
            rerun = run_loadgen(
                rate_qps=80.0,
                duration_ms=1_500.0,
                seed=11,
                prebuilt_databases=sample_databases,
            )
        finally:
            obs.disable()
        assert traced_run.flight_json() == rerun.flight_json()

    def test_untraced_run_omits_traces_but_keeps_summary(
        self, sample_databases
    ):
        result = run_loadgen(
            rate_qps=80.0,
            duration_ms=1_000.0,
            seed=11,
            prebuilt_databases=sample_databases,
        )
        record = result.flight_record()
        assert all("trace" not in q for q in record["queries"])
        assert "admission" in record["summary"]


class TestSloCli:
    def _run(self, tmp_path, name):
        flight = tmp_path / name
        code = main(
            [
                "slo",
                "--qps", "80",
                "--duration", "1000",
                "--seed", "11",
                "--flight", str(flight),
            ]
        )
        obs.disable()
        return code, flight

    def test_slo_emits_verdicts_and_flight_record(self, tmp_path, capsys):
        code, flight = self._run(tmp_path, "flight.json")
        out = capsys.readouterr().out
        assert code == 0
        assert "SLO verdicts" in out
        assert "admission decisions:" in out
        record = json.loads(flight.read_text())
        assert record["record"] == "flight-recorder"
        slo = record["slo"]
        assert set(slo["classes"]) == {"gold", "silver", "batch"}
        assert slo["classes"]["batch"]["target_ms"] == 800.0
        for entry in record["queries"]:
            if entry["status"] == "completed":
                assert entry["decomposition"]["exact"] is True

    def test_slo_flight_record_is_byte_identical(self, tmp_path, capsys):
        _, first = self._run(tmp_path, "a.json")
        _, second = self._run(tmp_path, "b.json")
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_loadgen_chrome_export(self, tmp_path, capsys):
        chrome = tmp_path / "trace.json"
        code = main(
            [
                "loadgen",
                "--qps", "80",
                "--duration", "1000",
                "--seed", "11",
                "--chrome", str(chrome),
            ]
        )
        obs.disable()
        capsys.readouterr()
        assert code == 0
        events = json.loads(chrome.read_text())["traceEvents"]
        slices = {e["name"] for e in events if e.get("ph") == "X"}
        assert {"queue_wait", "service", "merge"} <= slices
