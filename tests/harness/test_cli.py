"""Tests for the CLI and the packaged experiment runners."""

import pytest

from repro.cli import build_parser, main
from repro.harness.experiments import run_figure9
from repro.workload import TEST_SCALE


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "figure10"])
        assert args.name == "figure10"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])

    def test_query_flags(self):
        args = build_parser().parse_args(
            ["query", "SELECT 1", "--load", "S3=0.8", "--explain"]
        )
        assert args.sql == "SELECT 1"
        assert args.load == ["S3=0.8"]
        assert args.explain


class TestCommands:
    def test_query(self, capsys):
        code = main(
            ["query", "SELECT COUNT(*) FROM customer", "--scale", "test"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "servers:" in out
        assert "rows (1):" in out

    def test_query_explain(self, capsys):
        code = main(
            [
                "query",
                "SELECT COUNT(*) FROM customer",
                "--scale",
                "test",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Ranked global plans" in out
        assert "p1[" in out

    def test_query_with_load(self, capsys):
        code = main(
            [
                "query",
                "SELECT COUNT(*) FROM customer",
                "--scale",
                "test",
                "--load",
                "S3=0.9",
            ]
        )
        assert code == 0

    def test_bad_load_spec(self):
        with pytest.raises(Exception):
            main(
                [
                    "query",
                    "SELECT COUNT(*) FROM customer",
                    "--scale",
                    "test",
                    "--load",
                    "S3",
                ]
            )

    def test_status(self, capsys):
        code = main(["status", "--scale", "test", "--queries", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "server_factors" in out
        assert "ii_factor" in out

    def test_demo(self, capsys):
        code = main(["demo", "--scale", "test"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Mean response" in out
        assert "QCC status" in out


class TestExperimentRunners:
    def test_figure9_runner_structure(self, sample_databases):
        result = run_figure9(scale=TEST_SCALE, databases=sample_databases)
        assert set(result.measurements) == {"QT1", "QT2", "QT3", "QT4"}
        for data in result.measurements.values():
            assert set(data) == {"base", "loaded", "s3_loaded"}
            for condition in data.values():
                assert set(condition) == {"S1", "S2", "S3"}
        rendered = result.render()
        assert "Figure 9" in rendered
        assert "QT2" in rendered
