"""Tests for the CLI and the packaged experiment runners."""

import json
import re

import pytest

import repro.obs as obs
from repro.cli import build_parser, main
from repro.harness.experiments import run_figure9
from repro.workload import QUERY_TYPES, TEST_SCALE

QT1_SQL = QUERY_TYPES[0].instance(0).sql


@pytest.fixture()
def clean_obs():
    """Commands that configure the global obs sink get torn down."""
    yield
    obs.disable()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "figure10"])
        assert args.name == "figure10"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])

    def test_query_flags(self):
        args = build_parser().parse_args(
            ["query", "SELECT 1", "--load", "S3=0.8", "--explain"]
        )
        assert args.sql == "SELECT 1"
        assert args.load == ["S3=0.8"]
        assert args.explain


class TestCommands:
    def test_query(self, capsys):
        code = main(
            ["query", "SELECT COUNT(*) FROM customer", "--scale", "test"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "servers:" in out
        assert "rows (1):" in out

    def test_query_explain(self, capsys):
        code = main(
            [
                "query",
                "SELECT COUNT(*) FROM customer",
                "--scale",
                "test",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Ranked global plans" in out
        assert "p1[" in out

    def test_query_with_load(self, capsys):
        code = main(
            [
                "query",
                "SELECT COUNT(*) FROM customer",
                "--scale",
                "test",
                "--load",
                "S3=0.9",
            ]
        )
        assert code == 0

    def test_bad_load_spec(self):
        with pytest.raises(Exception):
            main(
                [
                    "query",
                    "SELECT COUNT(*) FROM customer",
                    "--scale",
                    "test",
                    "--load",
                    "S3",
                ]
            )

    def test_status(self, capsys):
        code = main(["status", "--scale", "test", "--queries", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "server_factors" in out
        assert "ii_factor" in out

    def test_demo(self, capsys):
        code = main(["demo", "--scale", "test"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Mean response" in out
        assert "QCC status" in out


class TestExplainCommand:
    def test_without_analyze_lists_ranked_plans(self, capsys):
        code = main(["explain", QT1_SQL, "--scale", "test"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ranked global plans" in out
        assert "p1[" in out

    @pytest.mark.parametrize("engine", ["row", "vector"])
    def test_analyze_annotates_estimates_and_actuals(self, capsys, engine):
        code = main(
            [
                "explain",
                QT1_SQL,
                "--scale",
                "test",
                "--analyze",
                "--engine",
                engine,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Global plan:" in out
        assert "II merge plan:" in out
        assert re.search(r"\(est rows=\d+ total=", out)
        assert re.search(
            r"\(actual rows=\d+ batches=\d+ loops=\d+ time=", out
        )
        # Both the fragment plan and the merge plan were annotated.
        assert out.count("actual rows=") >= 2

    def test_analyze_row_and_vector_report_identical_row_counts(
        self, capsys
    ):
        counts = {}
        for engine in ("row", "vector"):
            assert (
                main(
                    [
                        "explain",
                        QT1_SQL,
                        "--scale",
                        "test",
                        "--analyze",
                        "--engine",
                        engine,
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
            counts[engine] = re.findall(r"actual rows=(\d+)", out)
        assert counts["row"] == counts["vector"]
        assert counts["row"]


class TestTelemetryCommands:
    def test_metrics_prom_format(self, capsys, clean_obs):
        code = main(
            [
                "metrics",
                "--scale",
                "test",
                "--queries",
                "4",
                "--format",
                "prom",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE ii_queries_total counter" in out
        assert "# TYPE qcc_calibration_factor gauge" in out
        assert re.search(r'\{server="S\d"(,[^}]*)?\} ', out)

    def test_metrics_json_to_file(self, tmp_path, capsys, clean_obs):
        path = tmp_path / "metrics.json"
        code = main(
            [
                "metrics",
                "--scale",
                "test",
                "--queries",
                "4",
                "--format",
                "json",
                "--out",
                str(path),
            ]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert "counters" in payload
        assert "plan_cache" in payload

    def test_trace_chrome_format(self, tmp_path, clean_obs):
        path = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                "SELECT COUNT(*) AS n FROM customer",
                "--scale",
                "test",
                "--format",
                "chrome",
                "--out",
                str(path),
            ]
        )
        assert code == 0
        doc = json.loads(path.read_text())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete
        for event in complete:
            for field in ("ts", "dur", "pid", "tid"):
                assert field in event

    def test_timeline_command_exports(self, tmp_path, capsys, clean_obs):
        prefix = tmp_path / "tl"
        json_path = tmp_path / "tl.json"
        code = main(
            [
                "timeline",
                "--scale",
                "test",
                "--csv",
                str(prefix),
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Federation timeline" in out
        samples = (tmp_path / "tl_samples.csv").read_text().splitlines()
        assert samples[0].startswith("t_ms,server,calibration_factor")
        assert len(samples) > 1
        events = (tmp_path / "tl_events.csv").read_text().splitlines()
        assert events[0] == "t_ms,kind,server,detail,value"
        payload = json.loads(json_path.read_text())
        assert payload["experiment"] == "timeline"
        assert payload["samples"]


class TestChaosCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.seed == 42
        assert args.runs == 25
        assert args.max_shrink == 200
        assert args.jsonl is None
        assert args.repro is None

    def test_sweep_writes_deterministic_jsonl(self, tmp_path, capsys):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        assert main(
            ["chaos", "--seed", "42", "--runs", "2",
             "--jsonl", str(first)]
        ) == 0
        assert main(
            ["chaos", "--seed", "42", "--runs", "2",
             "--jsonl", str(second)]
        ) == 0
        assert first.read_text() == second.read_text()
        records = [
            json.loads(line)
            for line in first.read_text().splitlines()
        ]
        assert len(records) == 2
        for record in records:
            assert record["kind"] == "chaos-scenario"
            assert record["verdict"] == "ok"
            assert not any(record["violations"].values())

    def test_repro_replays_one_scenario(self, capsys):
        from repro.chaos import generate_scenario

        spec = generate_scenario(42, 1)
        code = main(
            ["chaos", "--seed", "42", "--repro", spec.canonical_json()]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 scenario(s), 0 with invariant violations" in out

    def test_checker_subset_flag(self, capsys):
        code = main(
            ["chaos", "--seed", "42", "--runs", "1",
             "--checkers", "no-down-dispatch"]
        )
        assert code == 0

    def test_failure_is_shrunk_and_exit_is_nonzero(self, capsys):
        """A violated invariant turns into a minimal repro command."""
        from repro.chaos.checkers import _REGISTRY, register_checker

        @register_checker("planted-outage-intolerance")
        def planted(run):
            if any(f.kind == "outage" for f in run.spec.faults):
                return ["planted: an outage exists"]
            return []

        try:
            code = main(
                ["chaos", "--seed", "42", "--runs", "1",
                 "--checkers", "planted-outage-intolerance",
                 "--max-shrink", "10"]
            )
        finally:
            del _REGISTRY["planted-outage-intolerance"]
        assert code == 1
        out = capsys.readouterr().out
        assert "[FAIL] scenario 0" in out
        assert "shrunk to 1 fault(s)" in out
        assert "reproduce: repro chaos --seed 42 --repro '" in out


class TestExperimentRunners:
    def test_figure9_runner_structure(self, sample_databases):
        result = run_figure9(scale=TEST_SCALE, databases=sample_databases)
        assert set(result.measurements) == {"QT1", "QT2", "QT3", "QT4"}
        for data in result.measurements.values():
            assert set(data) == {"base", "loaded", "s3_loaded"}
            for condition in data.values():
                assert set(condition) == {"S1", "S2", "S3"}
        rendered = result.render()
        assert "Figure 9" in rendered
        assert "QT2" in rendered
