"""Unit tests for federation builders."""


from repro.fed import FixedRouter
from repro.harness import (
    DEFAULT_SERVER_SPECS,
    build_federation,
    build_replica_federation,
)
from repro.workload import TEST_SCALE


class TestServerSpecs:
    def test_three_servers(self):
        assert [s.name for s in DEFAULT_SERVER_SPECS] == ["S1", "S2", "S3"]

    def test_s3_most_powerful(self):
        specs = {s.name: s for s in DEFAULT_SERVER_SPECS}
        assert specs["S3"].cpu_speed > specs["S1"].cpu_speed
        assert specs["S3"].io_speed > specs["S2"].io_speed

    def test_s3_cpu_load_sensitive_io_insensitive(self):
        specs = {s.name: s for s in DEFAULT_SERVER_SPECS}
        assert specs["S3"].cpu_sensitivity > specs["S1"].cpu_sensitivity
        assert specs["S3"].io_sensitivity < specs["S1"].io_sensitivity


class TestBuildFederation:
    def test_structure(self, sample_databases):
        deployment = build_federation(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        assert deployment.server_names() == ["S1", "S2", "S3"]
        assert deployment.qcc is not None
        assert deployment.integrator.qcc is deployment.qcc
        assert deployment.meta_wrapper.qcc is deployment.qcc

    def test_without_qcc(self, sample_databases):
        deployment = build_federation(
            scale=TEST_SCALE, with_qcc=False,
            prebuilt_databases=sample_databases,
        )
        assert deployment.qcc is None
        assert deployment.integrator.qcc is None

    def test_full_replication(self, sample_databases):
        deployment = build_federation(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        for nickname in deployment.registry.nicknames():
            assert deployment.registry.servers_for(nickname) == frozenset(
                {"S1", "S2", "S3"}
            )

    def test_replicas_identical(self, sample_databases):
        deployment = build_federation(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        rows = {
            name: list(server.database.storage.table("customer").scan())
            for name, server in deployment.servers.items()
        }
        assert rows["S1"] == rows["S2"] == rows["S3"]

    def test_set_load(self, sample_databases):
        deployment = build_federation(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        deployment.set_load({"S1": 0.5})
        assert deployment.servers["S1"].current_load(0.0) == 0.5
        assert deployment.servers["S2"].current_load(0.0) == 0.0

    def test_router_wiring(self, sample_databases):
        router = FixedRouter({"QT1": "S1"})
        deployment = build_federation(
            scale=TEST_SCALE,
            with_qcc=False,
            router=router,
            prebuilt_databases=sample_databases,
        )
        assert deployment.integrator.router is router


class TestReplicaFederation:
    def test_structure(self):
        deployment = build_replica_federation(scale=TEST_SCALE)
        assert deployment.server_names() == ["R1", "R2", "S1", "S2"]
        assert deployment.registry.servers_for("orders") == frozenset(
            {"S1", "R1"}
        )
        assert deployment.registry.servers_for("lineitem") == frozenset(
            {"S2", "R2"}
        )

    def test_replica_data_matches_origin(self):
        deployment = build_replica_federation(scale=TEST_SCALE)
        origin = list(
            deployment.servers["S1"].database.storage.table("orders").scan()
        )
        replica = list(
            deployment.servers["R1"].database.storage.table("orders").scan()
        )
        assert origin == replica
