"""Integration test for the Section 5.1 procedure runner."""

import pytest

from repro.baselines import qcc_deployment, uncalibrated_deployment
from repro.harness import run_procedure
from repro.workload import TEST_SCALE, build_workload


@pytest.fixture(scope="module")
def report(sample_databases):
    workload = build_workload(instances_per_type=2)
    # Step 5's baseline is "workload execution based on estimated costs"
    # — the uncalibrated cost-based system.
    return run_procedure(
        make_fixed=lambda: uncalibrated_deployment(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        ),
        make_calibrated=lambda: qcc_deployment(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        ),
        workload=workload,
    )


class TestProcedureReport:
    def test_step1_fragments_for_every_query(self, report):
        assert len(report.fragments) == 8
        assert all(fragments for fragments in report.fragments.values())

    def test_step2_estimates_cover_all_servers(self, report):
        for estimates in report.estimates.values():
            assert set(estimates) == {"S1", "S2", "S3"}
            assert all(v > 0 for v in estimates.values())

    def test_step3_4_observations_and_monotonicity(self, report):
        verdicts = report.load_monotonic()
        assert len(verdicts) == 8
        # Step 4's check: costs rise monotonically with load, everywhere.
        assert all(verdicts.values()), verdicts

    def test_step4_load_dominates_base(self, report):
        for key, base in report.baseline_observations.items():
            loaded = report.loaded_observations[key]
            for server, value in base.items():
                assert loaded[server] > value, (key, server)

    def test_steps_5_6_calibration_gain(self, report):
        assert report.fixed_mean_ms > 0
        assert report.calibrated_mean_ms > 0
        # Under uniform heavy load, QCC at least matches the uncalibrated
        # plan choice; the gap is small since every server is loaded.
        assert report.gain_percent > -5.0
