"""Property tests over the extension features."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import CalibratorConfig, CostCalibrator
from repro.fed import FederatedCursor
from repro.harness import build_federation
from repro.workload import TEST_SCALE


@pytest.fixture(scope="module")
def cursor_deployment(sample_databases):
    return build_federation(
        scale=TEST_SCALE, with_qcc=False, prebuilt_databases=sample_databases
    )


class TestCursorProperties:
    @given(
        batch_size=st.integers(1, 400),
        threshold=st.integers(500, 9_500),
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_reassembly_invariant(
        self, cursor_deployment, sample_databases, batch_size, threshold
    ):
        sql = (
            "SELECT o.orderkey, o.totalprice FROM orders o "
            f"WHERE o.totalprice > {threshold}"
        )
        cursor = FederatedCursor(
            cursor_deployment.integrator,
            sql,
            key_column="o.orderkey",
            batch_size=batch_size,
        )
        streamed = list(cursor)
        direct = sample_databases["S1"].run(
            sql + " ORDER BY o.orderkey"
        ).rows
        assert streamed == direct
        keys = [row[0] for row in streamed]
        assert len(keys) == len(set(keys))


class TestCalibratorConvergence:
    @given(
        multiplier=st.floats(0.5, 20.0),
        estimates=st.lists(st.floats(1.0, 500.0), min_size=3, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_factor_converges_to_true_multiplier(self, multiplier, estimates):
        """If observations are exactly estimate x m, the learned factor
        is exactly m (up to clamping)."""
        calibrator = CostCalibrator(CalibratorConfig(window=32))
        for estimate in estimates:
            calibrator.record("S", "sig", estimate, estimate * multiplier)
        calibrator.recalibrate()
        assert calibrator.factor("S") == pytest.approx(multiplier, rel=1e-6)
        assert calibrator.factor("S", "sig") == pytest.approx(
            multiplier, rel=1e-6
        )

    @given(
        multipliers=st.lists(st.floats(0.5, 10.0), min_size=2, max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_factor_within_observed_range(self, multipliers):
        calibrator = CostCalibrator(CalibratorConfig(window=32))
        for m in multipliers:
            calibrator.record("S", "sig", 10.0, 10.0 * m)
        calibrator.recalibrate()
        factor = calibrator.factor("S")
        assert min(multipliers) - 1e-9 <= factor <= max(multipliers) + 1e-9

    @given(
        regime_a=st.floats(1.0, 5.0),
        regime_b=st.floats(1.0, 5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_regime_change_absorbed_in_one_cycle(self, regime_a, regime_b):
        calibrator = CostCalibrator(CalibratorConfig(window=32))
        for _ in range(5):
            calibrator.record("S", "sig", 10.0, 10.0 * regime_a)
        calibrator.recalibrate()
        for _ in range(5):
            calibrator.record("S", "sig", 10.0, 10.0 * regime_b)
        calibrator.recalibrate()
        # The factor reflects only the new regime — no bleed-through.
        assert calibrator.factor("S") == pytest.approx(regime_b, rel=1e-6)
