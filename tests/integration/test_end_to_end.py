"""End-to-end integration tests: II + MW + QCC on a live federation."""

import pytest

from repro.baselines import qcc_deployment, uncalibrated_deployment
from repro.harness import run_workload_once
from repro.sim import OutageSchedule
from repro.sqlengine import rows_equal_unordered
from repro.workload import QT1, QT2, TEST_SCALE, build_workload


@pytest.fixture()
def deployment(sample_databases):
    return qcc_deployment(scale=TEST_SCALE, prebuilt_databases=sample_databases)


class TestCorrectness:
    def test_every_workload_query_matches_direct_execution(
        self, deployment, sample_databases
    ):
        for instance in build_workload(instances_per_type=2):
            federated = deployment.integrator.submit(
                instance.sql, label=instance.label
            )
            direct = sample_databases["S1"].run(instance.sql)
            assert rows_equal_unordered(federated.rows, direct.rows), (
                instance.query_type
            )

    def test_results_identical_across_routed_servers(self, deployment):
        """Replica servers are interchangeable for correctness."""
        instance = QT1.instance(0)
        results = []
        for server in ("S1", "S2", "S3"):
            _, plans = deployment.integrator.compile(instance.sql)
            matching = [p for p in plans if p.servers == frozenset({server})]
            assert matching, server
            results.append(
                deployment.servers[server]
                .execute_plan(matching[0].choices[0].plan, 0.0)
                .rows
            )
        assert rows_equal_unordered(results[0], results[1])
        assert rows_equal_unordered(results[0], results[2])


class TestCalibrationLearning:
    def test_factor_converges_to_observed_ratio(self, deployment):
        """After a stable workload, calibrated cost ≈ observed time."""
        instance = QT2.instance(0)
        deployment.set_load({"S1": 0.0, "S2": 0.0, "S3": 0.7})
        for _ in range(4):
            deployment.integrator.submit(instance.sql, label="QT2")
        deployment.qcc.recalibrate(deployment.clock.now)

        log = deployment.meta_wrapper.runtime_log
        last = log[-1]
        factor = deployment.qcc.factor(last.server, last.fragment_signature)
        observed_ratio = last.observed_ms / last.estimated_total
        assert factor == pytest.approx(observed_ratio, rel=0.5)

    def test_loaded_server_gets_higher_factor(self, deployment):
        deployment.set_load({"S1": 0.0, "S2": 0.0, "S3": 0.85})
        # Force traffic to every server via probes + direct executions.
        deployment.qcc.probe_servers(deployment.clock.now)
        deployment.qcc.recalibrate(deployment.clock.now)
        factors = deployment.qcc.calibrator.server_factors()
        assert factors["S3"] > factors["S1"]

    def test_ii_workload_factor_learned(self, deployment):
        for instance in build_workload(instances_per_type=2):
            deployment.integrator.submit(instance.sql, label=instance.label)
        deployment.qcc.recalibrate(deployment.clock.now)
        assert deployment.qcc.ii_factor() > 0
        assert deployment.qcc.ii_calibrator.sample_count >= 0


class TestAdaptiveRouting:
    def test_routing_shifts_away_from_loaded_server(self):
        # Purpose-built specs: S3 is fastest but collapses under load,
        # S1/S2 are slower but load-immune; identical links so network
        # noise cannot mask the crossover at tiny data scale.
        from repro.harness import ServerSpec

        specs = tuple(
            ServerSpec(
                name,
                cpu_speed=speed,
                io_speed=speed,
                cpu_sensitivity=sens,
                io_sensitivity=sens,
                latency_ms=2.0,
                bandwidth_mbps=100.0,
            )
            for name, speed, sens in (
                ("S1", 1.0, 0.05),
                ("S2", 1.0, 0.05),
                ("S3", 2.0, 0.99),
            )
        )
        deployment = qcc_deployment(scale=TEST_SCALE, specs=specs)
        workload = build_workload(instances_per_type=3)
        # Baseline: everything unloaded, queries concentrate on S3.
        run_workload_once(deployment, workload)
        deployment.qcc.recalibrate(deployment.clock.now)
        baseline = run_workload_once(deployment, workload)
        s3_share_before = _server_share(baseline, "S3")

        # Load S3 heavily and exaggerate its contention; re-learn.
        deployment.set_load({"S3": 0.9})
        deployment.clock.advance(3000.0)
        deployment.qcc.probe_servers(deployment.clock.now)
        for _ in range(2):
            run_workload_once(deployment, workload)
            deployment.qcc.recalibrate(deployment.clock.now)
        adapted = run_workload_once(deployment, workload)
        s3_share_after = _server_share(adapted, "S3")
        assert s3_share_after < s3_share_before

    def test_uncalibrated_system_does_not_adapt(self, sample_databases):
        deployment = uncalibrated_deployment(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        workload = build_workload(instances_per_type=2)
        before = run_workload_once(deployment, workload)
        deployment.set_load({"S3": 0.9})
        after = run_workload_once(deployment, workload)
        assert _server_share(before, "S3") == _server_share(after, "S3")


def _server_share(outcomes, server):
    hits = sum(1 for o in outcomes if server in o.servers)
    return hits / len(outcomes)


class TestAvailability:
    def test_failover_and_recovery(self, sample_databases):
        outage = OutageSchedule([(0.0, 50_000.0)])
        deployment = qcc_deployment(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        # Replace S3's availability after build (mid-life outage).
        deployment.servers["S3"].availability = outage

        instance = QT1.instance(0)
        result = deployment.integrator.submit(instance.sql, label="QT1")
        assert "S3" not in result.plan.servers
        assert result.row_count > 0

        # After the outage, a daemon probe readmits S3.
        deployment.clock.advance_to(60_000.0)
        deployment.qcc.probe_servers(deployment.clock.now)
        assert deployment.qcc.is_available("S3", deployment.clock.now)
        _, plans = deployment.integrator.compile(instance.sql)
        assert any("S3" in p.servers for p in plans)

    def test_down_event_recorded_from_error_log(self, sample_databases):
        deployment = qcc_deployment(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        deployment.qcc.record_error("S2", 10.0)
        assert "S2" in deployment.qcc.availability.down_servers()
        _, plans = deployment.integrator.compile(QT1.instance(0).sql)
        assert all("S2" not in p.servers for p in plans)


class TestTransparency:
    def test_ii_optimizer_has_no_qcc_dependency(self):
        """The paper's transparency claim: the global optimizer module
        never imports QCC — influence flows only through costs."""
        import repro.fed.global_optimizer as go
        import repro.fed.integrator as integrator_module

        assert "repro.core" not in go.__dict__.get("__builtins__", {})
        source_go = open(go.__file__).read()
        assert "from ..core" not in source_go
        assert "import repro.core" not in source_go
        source_int = open(integrator_module.__file__).read()
        assert "from ..core" not in source_int
