"""Integration tests: routing reacts to network latency, not just load."""


from repro.baselines import qcc_deployment, uncalibrated_deployment
from repro.harness import run_workload_once
from repro.sim import MutableLoad, NetworkLink
from repro.workload import TEST_SCALE, build_workload


def _congest_s3(deployment, slope=60.0):
    control = MutableLoad(0.0)
    deployment.servers["S3"].link = NetworkLink(
        latency_ms=3.0,
        bandwidth_mbps=150.0,
        congestion=control,
        latency_slope=slope,
    )
    return control


class TestNetworkAwareRouting:
    def test_qcc_evacuates_congested_link(self, sample_databases):
        deployment = qcc_deployment(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        control = _congest_s3(deployment)
        workload = build_workload(instances_per_type=3)

        # Clear link: S3 is the natural destination.
        run_workload_once(deployment, workload)
        deployment.qcc.recalibrate(deployment.clock.now)
        clear = run_workload_once(deployment, workload)
        assert any("S3" in o.servers for o in clear)

        # Congest the link; processing capacity is untouched.
        control.set(0.9)
        deployment.clock.advance(3_000.0)
        deployment.qcc.probe_servers(deployment.clock.now)
        for _ in range(2):
            run_workload_once(deployment, workload)
            deployment.qcc.recalibrate(deployment.clock.now)
        adapted = run_workload_once(deployment, workload)
        s3_after = sum(1 for o in adapted if "S3" in o.servers)
        s3_before = sum(1 for o in clear if "S3" in o.servers)
        assert s3_after < s3_before

    def test_uncalibrated_is_blind_to_congestion(self, sample_databases):
        deployment = uncalibrated_deployment(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        control = _congest_s3(deployment)
        workload = build_workload(instances_per_type=2)
        before = run_workload_once(deployment, workload)
        control.set(0.9)
        after = run_workload_once(deployment, workload)
        # Identical routing, worse times: the estimates cannot see links.
        assert [o.servers for o in before] == [o.servers for o in after]
        assert sum(o.response_ms for o in after) > sum(
            o.response_ms for o in before
        )

    def test_probe_rtt_reflects_congestion(self, sample_databases):
        deployment = qcc_deployment(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        control = _congest_s3(deployment)
        clear_rtt = deployment.meta_wrapper.probe("S3", 0.0)
        control.set(0.9)
        congested_rtt = deployment.meta_wrapper.probe("S3", 0.0)
        assert congested_rtt > clear_rtt * 10
