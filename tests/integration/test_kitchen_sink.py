"""Everything-on stability test.

All features active simultaneously — calibration, reliability, both
load balancers, induced load, update storms, transient errors, an
outage, and phase shifts — and the system must keep answering queries
correctly.
"""

import pytest

from repro.core import LoadBalanceConfig, QCCConfig
from repro.harness import build_federation
from repro.sim import InducedLoad, OutageSchedule, UpdateStormDriver
from repro.sqlengine import rows_close_unordered
from repro.workload import PHASES, TEST_SCALE, build_workload


@pytest.mark.parametrize("seed", [7, 11])
def test_everything_on_everything_breaks_nothing(sample_databases, seed):
    config = QCCConfig(
        enable_fragment_balancing=True,
        enable_global_balancing=True,
        enable_reliability=True,
        load_balance=LoadBalanceConfig(band=0.3, workload_threshold=0.0),
        drift_trigger_ratio=2.0,
    )
    deployment = build_federation(
        scale=TEST_SCALE,
        seed=seed,
        qcc_config=config,
        prebuilt_databases=None if seed != 7 else sample_databases,
        error_seeds={"S2": 0.15},
    )
    # Traffic-sensitive load on S1 plus a storm hitting it.
    s1 = deployment.servers["S1"]
    s1.load = InducedLoad(gain=0.003, decay_ms=10_000.0, base=deployment.loads["S1"])
    # The storm hits a table the workload never reads: its load effects
    # are felt, but replica equivalence of the workload tables survives.
    storm = UpdateStormDriver(s1, table="supplier", seed=seed)
    # S3 takes an outage partway through.
    deployment.servers["S3"].availability = OutageSchedule(
        [(2_000.0, 20_000.0)]
    )

    workload = build_workload(instances_per_type=2, seed=seed)
    reference = {
        instance.sql: deployment.servers["S2"].database.run(instance.sql).rows
        for instance in workload
    }

    completed = 0
    for phase in (PHASES[0], PHASES[1], PHASES[4]):
        deployment.set_load(
            {
                name: phase.level_for(name, 0.7)
                for name in deployment.server_names()
            }
        )
        storm.burst(deployment.clock.now, statements=4)
        for instance in workload:
            try:
                result = deployment.integrator.submit(
                    instance.sql, label=instance.label
                )
            except Exception as exc:  # noqa: BLE001 - inspected below
                from repro.fed import FederationError
                from repro.sim import ServerUnavailable

                assert isinstance(exc, (FederationError, ServerUnavailable))
                continue
            completed += 1
            assert rows_close_unordered(
                result.rows, reference[instance.sql]
            ), instance.query_type
        deployment.clock.advance(3_000.0)

    # The system must have made real progress despite the chaos.
    assert completed >= len(workload) * 2
    status = deployment.qcc.status()
    assert status["execution_records"] > 0
    assert status["recalibrations"] >= 0
    # And the patroller's books balance.
    patroller = deployment.integrator.patroller
    assert len(patroller) == completed + patroller.failure_count()
