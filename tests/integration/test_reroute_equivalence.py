"""Differential migration harness: re-routing is byte-invisible.

The tentpole claim of the re-routing subsystem is *exactness*: a query
whose scan fragment migrates mid-flight — at any batch boundary, under
any batch size, on any execution engine — must return rows
byte-identical to the fault-free run, and the calibrator must receive
bit-identical feedback (the primary's full demonstrated demand, never a
migration-inflated figure).

The sweep here is exhaustive over interrupt instants, not sampled: for
every (engine, batch size) cell it derives the fragment batch schedules
from a no-reroute oracle run, then fires a calibration-epoch bump at
*every* batch-boundary instant and at every mid-batch midpoint, and
holds each perturbed run to the oracle's answer.  Seeds and query
instances come from ``derive_rng`` so the matrix is reproducible from
the module constants alone.
"""

import pytest

from repro.fed import batch_schedule
from repro.fed.concurrent import ConcurrentRuntime
from repro.harness.deployment import build_replica_federation
from repro.sim.rng import derive_rng
from repro.sqlengine import resolve_engine
from repro.workload import TEST_SCALE, queries as Q

#: Data seed shared with the chaos runner so the replica dataset is the
#: battle-tested one.
DATA_SEED = 7

#: Sweep seed: picks the query instances via derive_rng.
SWEEP_SEED = 2025

ENGINES = ("row", "vector", "columnar")
BATCH_SIZES = (1, 2, 7, 1024)

#: Compile overhead of a single query submitted at t=0: fragments hit
#: the wire at this instant, so batch boundaries sit at
#: ``DISPATCH_MS + cumsum(batch demands)``.
DISPATCH_MS = 2.0


def _query_sql(rng_component):
    """One QT2 and one QT4 instance, chosen reproducibly."""
    rng = derive_rng(SWEEP_SEED, "reroute", rng_component)
    template = Q.QT2 if rng_component == "qt2" else Q.QT4
    return template.instance(rng.randrange(10), DATA_SEED).sql


@pytest.fixture(scope="module")
def replica_databases():
    deployment = build_replica_federation(
        scale=TEST_SCALE, seed=DATA_SEED, with_qcc=False
    )
    return {
        name: server.database
        for name, server in deployment.servers.items()
    }


def _run_query(
    databases,
    engine,
    sql,
    reroute_batch_rows=None,
    bump_at=(),
):
    """One fresh deployment, one query, optional epoch bumps.

    Returns ``(result, runtime_log)``.  Databases are shared across
    runs, so the engine override is restored afterwards (the chaos
    runner's save/restore discipline).
    """
    deployment = build_replica_federation(
        scale=TEST_SCALE,
        seed=DATA_SEED,
        prebuilt_databases=databases,
    )
    resolved = resolve_engine(engine)
    saved = {
        name: server.database.engine
        for name, server in deployment.servers.items()
    }
    for server in deployment.servers.values():
        server.database.engine = resolved
    try:
        runtime = ConcurrentRuntime(
            deployment.integrator, reroute_batch_rows=reroute_batch_rows
        )
        handle = runtime.submit_at(0.0, sql)
        epoch = deployment.integrator.calibration_epoch
        for t_ms in bump_at:
            runtime.scheduler.call_at(t_ms, lambda: epoch.bump())
        runtime.run()
    finally:
        for name, server in deployment.servers.items():
            server.database.engine = saved[name]
    assert handle.error is None, handle.error
    assert handle.result is not None
    return handle.result, list(deployment.meta_wrapper.runtime_log)


def _log_key(log):
    """The calibrator-visible feedback, as a comparable value."""
    return [
        (
            entry.t_ms,
            entry.fragment_id,
            entry.fragment_signature,
            entry.server,
            entry.plan_signature,
            entry.estimated_total,
            entry.observed_ms,
        )
        for entry in log
    ]


def _bump_instants(result, batch_rows):
    """Every batch-boundary instant plus every mid-batch midpoint.

    Boundaries are derived from the oracle run's per-fragment demands —
    the same ``batch_schedule`` the migration policy itself consults —
    so a bump at ``boundaries[i]`` lands exactly on the checkpoint after
    batch ``i`` and a midpoint lands strictly inside batch ``i+1``.
    """
    instants = set()
    for outcome in result.fragments.values():
        spans = batch_schedule(outcome.execution, batch_rows)
        acc = DISPATCH_MS
        previous = acc
        for span in spans:
            acc += span.demand_ms
            instants.add(acc)
            instants.add((previous + acc) / 2.0)
            previous = acc
    return sorted(instants)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("component", ("qt2", "qt4"))
def test_untriggered_rerouting_is_bit_identical(
    replica_databases, engine, component
):
    """Enabled-but-idle re-routing must not perturb a single byte."""
    sql = _query_sql(component)
    oracle, oracle_log = _run_query(replica_databases, engine, sql)
    armed, armed_log = _run_query(
        replica_databases, engine, sql, reroute_batch_rows=4
    )
    assert armed.reroutes == 0
    assert list(armed.rows) == list(oracle.rows)
    assert armed.response_ms == oracle.response_ms
    assert _log_key(armed_log) == _log_key(oracle_log)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("batch_rows", BATCH_SIZES)
def test_migration_sweep_matches_oracle(
    replica_databases, engine, batch_rows
):
    """Bump the epoch at every boundary and midpoint; answers never move.

    ``rows`` are compared as ordered lists — the merge is deterministic,
    so even row *order* must survive a migration.  The runtime log is
    compared bit-for-bit: QCC must see the primary's raw demand whether
    or not the tail was re-shipped to a replica.
    """
    sql = _query_sql("qt2")
    oracle, oracle_log = _run_query(replica_databases, engine, sql)
    oracle_rows = list(oracle.rows)
    oracle_key = _log_key(oracle_log)
    multi_batch = any(
        len(batch_schedule(outcome.execution, batch_rows)) > 1
        for outcome in oracle.fragments.values()
    )

    migrations = 0
    for t_bump in _bump_instants(oracle, batch_rows):
        perturbed, log = _run_query(
            replica_databases,
            engine,
            sql,
            reroute_batch_rows=batch_rows,
            bump_at=(t_bump,),
        )
        migrations += perturbed.reroutes
        assert list(perturbed.rows) == oracle_rows, (
            f"rows drifted (engine={engine}, batch={batch_rows}, "
            f"bump={t_bump})"
        )
        assert _log_key(log) == oracle_key, (
            f"calibrator feedback drifted (engine={engine}, "
            f"batch={batch_rows}, bump={t_bump})"
        )
    if multi_batch:
        # The sweep must actually exercise the mechanism, not vacuously
        # pass because every interrupt declined.
        assert migrations > 0
    else:
        # A single-batch fragment has no boundary to migrate at; the
        # policy must never arm (batch_rows=1024 at test scale).
        assert migrations == 0


@pytest.mark.parametrize("component", ("qt2", "qt4"))
def test_engines_agree_under_migration(replica_databases, component):
    """The same mid-scan bump produces identical behaviour per engine."""
    sql = _query_sql(component)
    oracle, _ = _run_query(replica_databases, "row", sql)
    instants = _bump_instants(oracle, 4)
    t_bump = instants[len(instants) // 2]
    results = {}
    for engine in ENGINES:
        perturbed, log = _run_query(
            replica_databases,
            engine,
            sql,
            reroute_batch_rows=4,
            bump_at=(t_bump,),
        )
        results[engine] = (
            list(perturbed.rows),
            perturbed.response_ms,
            perturbed.reroutes,
            _log_key(log),
        )
    assert results["row"] == results["vector"] == results["columnar"]


def test_double_bump_migrates_at_most_once(replica_databases):
    """The policy bound: one migration per fragment, ever."""
    sql = _query_sql("qt2")
    oracle, _ = _run_query(replica_databases, "row", sql)
    instants = _bump_instants(oracle, 2)
    early, late = instants[1], instants[-2]
    perturbed, _ = _run_query(
        replica_databases,
        "row",
        sql,
        reroute_batch_rows=2,
        bump_at=(early, late),
    )
    assert list(perturbed.rows) == list(oracle.rows)
    assert perturbed.reroutes <= len(perturbed.fragments)
