"""Property-based three-engine equivalence, seeded via ``derive_rng``.

Complements ``test_engine_equivalence`` (hypothesis-driven, workload
tables) with deterministic randomized shapes over data the workload
never stresses: NULL-heavy columns, low-cardinality strings (the
dictionary-encoding path), empty tables, and degenerate batch sizes
(1 and 2, which force every multi-batch code path: selection vectors
across batch boundaries, per-batch dictionary views, join builds that
span batches).

Every generated query must produce byte-identical rows on all three
engines and bit-identical ``WorkMeter`` totals between vector and
columnar (and the row engine too — no generated shape uses LIMIT).
"""

from __future__ import annotations

import pytest

from repro.sim.rng import derive_rng
from repro.sqlengine import Database, execute_plan, populate
from repro.sqlengine.types import Column, ColumnType, Schema
from repro.workload import TEST_SCALE
from repro.workload.schema import table_specs

ENGINES = ("row", "vector", "columnar")

ROOT_SEED = 20260807


@pytest.fixture(scope="module")
def mixed_db():
    database = Database(name="columnar-eq")
    populate(database, table_specs(TEST_SCALE), seed=7)

    rng = derive_rng(ROOT_SEED, "data")
    names = ["alpha", "beta", "gamma", "delta", None, "alphabet", "beta_x"]
    database.create_table(
        "t",
        Schema(
            [
                Column("a", ColumnType.INT),
                Column("b", ColumnType.FLOAT),
                Column("s", ColumnType.STR),
                Column("c", ColumnType.INT),
            ]
        ),
    )
    database.load_rows(
        "t",
        [
            (
                None if rng.random() < 0.3 else rng.randint(-5, 5),
                None if rng.random() < 0.3 else round(rng.uniform(-2, 2), 3),
                rng.choice(names),
                i,
            )
            for i in range(499)
        ],
    )
    database.create_table("empty", Schema([Column("x", ColumnType.INT)]))
    database.load_rows("empty", [])
    database.analyze()
    return database


def assert_equivalent(database, sql, batch_size):
    plan = database.explain(sql)[0].plan
    results = {
        engine: execute_plan(
            plan,
            database.storage,
            database.params,
            engine=engine,
            batch_size=batch_size,
        )
        for engine in ENGINES
    }
    reference = results["vector"]
    for engine in ENGINES:
        result = results[engine]
        assert result.rows == reference.rows, (sql, engine, batch_size)
        meter, ref = result.meter, reference.meter
        assert (meter.cpu_ms, meter.io_ms, meter.tuples_out) == (
            ref.cpu_ms,
            ref.io_ms,
            ref.tuples_out,
        ), (sql, engine, batch_size)


# -- generators (pure functions of the derived rng) -------------------------


def _gen_filter(rng):
    column = rng.choice(["a", "b", "c"])
    op = rng.choice(["<", "<=", ">", ">=", "=", "!="])
    value = (
        round(rng.uniform(-2, 2), 2)
        if column == "b"
        else rng.randint(-5, 260)
    )
    extra = rng.choice(
        [
            "",
            " AND s LIKE '%a%'",
            " OR s IN ('beta', 'delta')",
            " AND s NOT LIKE 'alpha%'",
            f" OR a IN ({rng.randint(-5, 5)}, {rng.randint(-5, 5)})",
        ]
    )
    return f"SELECT a, b, s, c FROM t WHERE {column} {op} {value}{extra}"


def _gen_arithmetic(rng):
    op = rng.choice(["+", "-", "*", "/", "%"])
    literal = rng.randint(1, 9)
    return (
        f"SELECT a {op} {literal}, b * 2.0, a {op} c FROM t "
        f"WHERE c < {rng.randint(1, 499)}"
    )


def _gen_aggregate(rng):
    key = rng.choice(["s", "a", "a, s"])
    aggs = rng.choice(
        [
            "COUNT(*)",
            "COUNT(*), SUM(a), AVG(b)",
            "MIN(c), MAX(c), COUNT(b)",
            "COUNT(DISTINCT s), SUM(b)",
        ]
    )
    having = rng.choice(["", " HAVING COUNT(*) > 3"])
    return f"SELECT {key}, {aggs} FROM t GROUP BY {key}{having}"


def _gen_distinct(rng):
    columns = rng.choice(["s", "a", "b", "a, s"])
    return f"SELECT DISTINCT {columns} FROM t"


def _gen_join(rng):
    predicate = rng.choice(
        ["", f" AND o.totalprice > {rng.randint(50, 500)}.0"]
    )
    return (
        "SELECT o.orderkey, c.segment FROM orders o, customer c "
        f"WHERE o.custkey = c.custkey{predicate}"
    )


GENERATORS = (
    ("filter", _gen_filter),
    ("arithmetic", _gen_arithmetic),
    ("aggregate", _gen_aggregate),
    ("distinct", _gen_distinct),
    ("join", _gen_join),
)


@pytest.mark.parametrize("kind,generate", GENERATORS, ids=lambda g: None)
@pytest.mark.parametrize("case", range(8))
def test_random_shapes_bit_identical(mixed_db, kind, generate, case):
    rng = derive_rng(ROOT_SEED, kind, case)
    sql = generate(rng)
    batch_size = derive_rng(ROOT_SEED, kind, case, "bs").choice(
        [1, 2, 7, 1024]
    )
    assert_equivalent(mixed_db, sql, batch_size)


# -- fixed edge cases -------------------------------------------------------


@pytest.mark.parametrize("batch_size", [1, 2, 1024])
@pytest.mark.parametrize(
    "sql",
    [
        "SELECT x FROM empty",
        "SELECT COUNT(*), SUM(x), MIN(x) FROM empty",
        "SELECT DISTINCT x FROM empty",
        "SELECT s, COUNT(*) FROM t GROUP BY s",
        "SELECT COUNT(*), COUNT(a), COUNT(b), COUNT(s) FROM t",
        "SELECT c FROM t WHERE s LIKE '_eta%'",
        "SELECT b / a FROM t",
        "SELECT a, b, c FROM t ORDER BY c DESC, a LIMIT 17",
    ],
)
def test_edge_cases_bit_identical(mixed_db, sql, batch_size):
    if "LIMIT" in sql:
        # Rows always match; vector==columnar meters are compared via
        # the row-engine-exempt path below.
        plan = mixed_db.explain(sql)[0].plan
        results = {
            engine: execute_plan(
                plan,
                mixed_db.storage,
                mixed_db.params,
                engine=engine,
                batch_size=batch_size,
            )
            for engine in ENGINES
        }
        reference = results["vector"]
        for engine in ENGINES:
            assert results[engine].rows == reference.rows
        col_meter = results["columnar"].meter
        assert (
            col_meter.cpu_ms,
            col_meter.io_ms,
            col_meter.tuples_out,
        ) == (
            reference.meter.cpu_ms,
            reference.meter.io_ms,
            reference.meter.tuples_out,
        )
        return
    assert_equivalent(mixed_db, sql, batch_size)
