"""The plan cache must be behavior-invisible.

Runs the same Figure-9-style load-shifting sweep on two deployments —
plan cache on and off — submitting every query in lockstep, and asserts
both choose byte-identical plans with identical (virtual-time) response
times throughout.  Because compile overhead is charged as a constant in
virtual time, caching changes only wall-clock cost, never behavior.
"""

import pytest

from repro.harness import build_federation
from repro.workload import PHASES, TEST_SCALE, build_workload


@pytest.fixture()
def paired_deployments(sample_databases):
    cached = build_federation(
        scale=TEST_SCALE, prebuilt_databases=sample_databases
    )
    uncached = build_federation(
        scale=TEST_SCALE,
        prebuilt_databases=sample_databases,
        enable_plan_cache=False,
    )
    return cached, uncached


def test_cached_and_uncached_runs_choose_identical_plans(
    paired_deployments,
):
    cached, uncached = paired_deployments
    workload = build_workload(instances_per_type=2, seed=7)
    # Idle, S3-loaded, all-loaded: the shifts that move QT2/QT3 routing.
    phases = (PHASES[0], PHASES[1], PHASES[7])

    for phase in phases:
        for deployment in (cached, uncached):
            deployment.set_load(phase.levels())
            deployment.clock.advance(3_000.0)
            deployment.qcc.probe_servers(deployment.clock.now)
        for repeat in range(2):  # second pass exercises cache hits
            for instance in workload:
                r_cached = cached.integrator.submit(
                    instance.sql, label=instance.label
                )
                r_uncached = uncached.integrator.submit(
                    instance.sql, label=instance.label
                )
                assert (
                    r_cached.plan.describe() == r_uncached.plan.describe()
                ), (phase.name, repeat, instance.label)
                assert r_cached.response_ms == pytest.approx(
                    r_uncached.response_ms
                )
                assert r_cached.row_count == r_uncached.row_count
        for deployment in (cached, uncached):
            deployment.qcc.recalibrate(deployment.clock.now)

    stats = cached.integrator.plan_cache.stats()
    assert stats["hits"] > 0, stats
    assert uncached.integrator.plan_cache is None
    # The two runs stayed in lockstep to the end.
    assert cached.clock.now == pytest.approx(uncached.clock.now)
