"""Integration tests for Section 4's load distribution on live replicas."""


from repro.core import LoadBalanceConfig, QCCConfig
from repro.core.cycle import CycleConfig
from repro.harness.deployment import build_replica_federation
from repro.sqlengine import rows_equal_unordered
from repro.workload import TEST_SCALE

Q6 = (
    "SELECT o.priority, COUNT(*) AS n FROM orders o "
    "JOIN lineitem l ON o.orderkey = l.orderkey GROUP BY o.priority"
)

SINGLE = "SELECT custkey FROM customer WHERE acctbal > 100"

#: Calibration frozen so that any observed routing change is the work of
#: the *balancers* under test, not of calibration-driven adaptation.
_FROZEN = CycleConfig(
    base_interval_ms=600_000.0,
    min_interval_ms=600_000.0,
    max_interval_ms=600_000.0,
)


def _deployment(fragment=False, global_=False, band=0.5, threshold=0.0):
    config = QCCConfig(
        enable_fragment_balancing=fragment,
        enable_global_balancing=global_,
        load_balance=LoadBalanceConfig(
            band=band, workload_threshold=threshold
        ),
        cycle=_FROZEN,
        drift_trigger_ratio=0.0,
    )
    return build_replica_federation(scale=TEST_SCALE, qcc_config=config)


class TestGlobalLevelBalancing:
    def test_rotation_spreads_q6_across_server_sets(self):
        deployment = _deployment(global_=True, band=1.0)
        server_sets = set()
        for _ in range(6):
            result = deployment.integrator.submit(Q6)
            server_sets.add(result.plan.servers)
        assert len(server_sets) >= 2

    def test_rotation_preserves_results(self):
        deployment = _deployment(global_=True, band=1.0)
        results = [deployment.integrator.submit(Q6).rows for _ in range(4)]
        for other in results[1:]:
            assert rows_equal_unordered(results[0], other)

    def test_disabled_balancing_sticks_to_cheapest(self):
        deployment = _deployment(global_=False)
        server_sets = {
            frozenset(deployment.integrator.submit(Q6).plan.servers)
            for _ in range(4)
        }
        assert len(server_sets) == 1

    def test_threshold_gates_rotation(self):
        deployment = _deployment(global_=True, band=1.0, threshold=1e12)
        server_sets = {
            frozenset(deployment.integrator.submit(Q6).plan.servers)
            for _ in range(4)
        }
        assert len(server_sets) == 1


class TestFragmentLevelBalancing:
    def test_identical_fragments_keep_stable_affinity(self):
        """HRW selection: repeated submissions of the same fragment all
        land on one stable replica of the {S1, R1} cluster."""
        deployment = _deployment(fragment=True, band=1.0)
        servers = []
        for _ in range(6):
            result = deployment.integrator.submit(SINGLE)
            outcome = next(iter(result.fragments.values()))
            servers.append(outcome.option.server)
        assert len(set(servers)) == 1
        assert servers[0] in {"S1", "R1"}

    def test_substitution_results_identical(self):
        deployment = _deployment(fragment=True, band=1.0)
        results = [
            deployment.integrator.submit(SINGLE).rows for _ in range(4)
        ]
        for other in results[1:]:
            assert rows_equal_unordered(results[0], other)

    def test_distinct_fragments_spread_over_replicas(self):
        """Distinct fragment instances (different literals) hash to
        different HRW homes, spreading load across the cluster."""
        deployment = _deployment(fragment=True, band=1.0)
        counts = {}
        for bal in range(40, 72):
            sql = f"SELECT custkey FROM customer WHERE acctbal > {bal}"
            result = deployment.integrator.submit(sql)
            server = next(iter(result.fragments.values())).option.server
            counts[server] = counts.get(server, 0) + 1
        assert set(counts) == {"S1", "R1"}
