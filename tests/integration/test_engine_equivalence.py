"""Differential harness: row, vector and columnar engines, bit for bit.

The batch engines are only allowed to change wall-clock time.  For
every query — the full paper workload plus randomized filter / join /
aggregate shapes — all three engines must return identical row lists
*and* identical ``WorkMeter`` totals, because metered work drives the
response-time simulation and QCC calibration (docs/execution.md).

The single documented exception is LIMIT under a batch engine: early
termination happens at batch granularity, so vector and columnar may
meter slightly more scanned work than the row engine (they still agree
with *each other* bit for bit).  Rows must always match exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sqlengine import Database, execute_plan, populate
from repro.workload import TEST_SCALE
from repro.workload.queries import EXTENDED_QUERY_TYPES
from repro.workload.schema import table_specs

ENGINES = ("row", "vector", "columnar")


@pytest.fixture(scope="module")
def workload_db():
    database = Database(name="diff")
    populate(database, table_specs(TEST_SCALE), seed=7)
    return database


def run_all(database, sql):
    plan = database.explain(sql)[0].plan
    return {
        engine: execute_plan(
            plan, database.storage, database.params, engine=engine
        )
        for engine in ENGINES
    }


def assert_equivalent(database, sql, check_meter=True):
    results = run_all(database, sql)
    reference = results["vector"]
    for engine in ENGINES:
        result = results[engine]
        assert result.engine == engine
        assert result.rows == reference.rows, (sql, engine)
        if check_meter:
            assert result.meter.cpu_ms == reference.meter.cpu_ms, (sql, engine)
            assert result.meter.io_ms == reference.meter.io_ms, (sql, engine)
            assert result.meter.tuples_out == reference.meter.tuples_out, (
                sql,
                engine,
            )
    # Vector and columnar agree bit-for-bit even when the row engine is
    # exempt (LIMIT): both terminate at the same batch boundaries.
    columnar = results["columnar"]
    assert columnar.meter.cpu_ms == reference.meter.cpu_ms, sql
    assert columnar.meter.io_ms == reference.meter.io_ms, sql
    assert columnar.meter.tuples_out == reference.meter.tuples_out, sql


# -- the paper workload -----------------------------------------------------


@pytest.mark.parametrize(
    "template", EXTENDED_QUERY_TYPES, ids=lambda t: t.name
)
@pytest.mark.parametrize("instance_id", [0, 1, 2])
def test_workload_queries_bit_identical(workload_db, template, instance_id):
    sql = template.instance(instance_id, seed=11).sql
    assert_equivalent(workload_db, sql)


# -- randomized shapes ------------------------------------------------------


@st.composite
def _filter_queries(draw):
    threshold = draw(st.floats(10.0, 1000.0, allow_nan=False))
    quantity = draw(st.integers(1, 50))
    connective = draw(st.sampled_from(["AND", "OR"]))
    return (
        "SELECT l.linekey, l.extprice, l.quantity FROM lineitem l "
        f"WHERE l.extprice > {threshold:.2f} {connective} "
        f"l.quantity < {quantity}"
    )


def _join_sql(threshold, selective):
    where = f" AND o.totalprice > {threshold}" if selective else ""
    return (
        "SELECT o.orderkey, c.nation, o.totalprice "
        "FROM orders o JOIN customer c ON o.custkey = c.custkey"
        f"{where}"
    )


@st.composite
def _aggregate_queries(draw):
    key = draw(st.sampled_from(["l.quantity", "l.orderkey", "l.prodkey"]))
    aggs = draw(
        st.sampled_from(
            [
                "COUNT(*) AS n",
                "COUNT(*) AS n, SUM(l.extprice) AS s",
                "SUM(l.extprice) AS s, AVG(l.extprice) AS a, "
                "MIN(l.extprice) AS lo, MAX(l.extprice) AS hi",
            ]
        )
    )
    having = draw(st.sampled_from(["", " HAVING COUNT(*) > 2"]))
    return (
        f"SELECT {key}, {aggs} FROM lineitem l GROUP BY {key}{having}"
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(sql=_filter_queries())
def test_random_filters_bit_identical(workload_db, sql):
    assert_equivalent(workload_db, sql)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    threshold=st.integers(100, 9_000),
    selective=st.booleans(),
)
def test_random_joins_bit_identical(workload_db, threshold, selective):
    assert_equivalent(workload_db, _join_sql(threshold, selective))


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(sql=_aggregate_queries())
def test_random_aggregates_bit_identical(workload_db, sql):
    assert_equivalent(workload_db, sql)


# -- order by / distinct / limit -------------------------------------------


def test_order_by_distinct_bit_identical(workload_db):
    assert_equivalent(
        workload_db,
        "SELECT DISTINCT c.nation FROM customer c ORDER BY c.nation DESC",
    )


def test_limit_rows_identical_meter_exempt(workload_db):
    # LIMIT is the documented meter exception: the batch engines scan
    # to the batch boundary, so the row engine's meter is exempt.  Rows
    # match on all three and vector==columnar meters are still asserted
    # inside the helper.
    assert_equivalent(
        workload_db,
        "SELECT l.linekey FROM lineitem l "
        "WHERE l.extprice > 50.0 ORDER BY l.linekey LIMIT 17",
        check_meter=False,
    )
