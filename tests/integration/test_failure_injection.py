"""Property-based failure injection: the federation degrades gracefully.

Random outage schedules and error rates are thrown at the deployment;
the invariant is that every submitted query either completes with the
correct result or fails with a clean FederationError — never a crash —
and that the patroller's books always balance.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fed import FederationError, QueryStatus
from repro.harness import build_federation
from repro.sim import OutageSchedule, ServerUnavailable
from repro.sqlengine import rows_close_unordered
from repro.workload import QT3, TEST_SCALE


@st.composite
def _fault_plans(draw):
    """Per-server outage windows and transient error rates."""
    plan = {}
    for server in ("S1", "S2", "S3"):
        has_outage = draw(st.booleans())
        if has_outage:
            start = draw(st.floats(0.0, 5_000.0))
            length = draw(st.floats(100.0, 50_000.0))
            plan[server] = ("outage", (start, start + length))
        else:
            rate = draw(st.sampled_from([0.0, 0.0, 0.2, 0.5]))
            plan[server] = ("errors", rate)
    return plan


class TestFailureInjection:
    @given(_fault_plans(), st.integers(0, 10_000))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_graceful_degradation(self, sample_databases, plan, start_time):
        availability = {}
        error_seeds = {}
        for server, (kind, value) in plan.items():
            if kind == "outage":
                availability[server] = OutageSchedule([value])
            else:
                error_seeds[server] = value
        deployment = build_federation(
            scale=TEST_SCALE,
            prebuilt_databases=sample_databases,
            availability=availability,
            error_seeds=error_seeds,
        )
        deployment.clock.advance(float(start_time))
        instance = QT3.instance(0)
        reference = sample_databases["S1"].run(instance.sql).rows

        completed = failed = 0
        for _ in range(4):
            try:
                result = deployment.integrator.submit(
                    instance.sql, label="QT3"
                )
            except (FederationError, ServerUnavailable):
                failed += 1
                continue
            completed += 1
            # Any successful answer must be the correct answer.
            assert rows_close_unordered(result.rows, reference)

        patroller = deployment.integrator.patroller
        records = patroller.records()
        assert len(records) == completed + failed
        assert (
            sum(1 for r in records if r.status is QueryStatus.COMPLETED)
            == completed
        )
        assert patroller.failure_count() == failed
        # Response times are recorded for every completed query.
        for record in patroller.completed():
            assert record.response_time_ms is not None
            assert record.response_time_ms >= 0
