"""Property-based failure injection: the federation degrades gracefully.

Random outage schedules and error rates are thrown at the deployment;
the invariant is that every submitted query either completes with the
correct result or fails with a clean FederationError — never a crash —
and that the patroller's books always balance.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fed import FederationError, QueryStatus
from repro.harness import build_federation
from repro.sim import (
    OutageSchedule,
    ServerUnavailable,
    WindowedErrorInjector,
)
from repro.sqlengine import rows_close_unordered
from repro.workload import QT1, QT3, TEST_SCALE


@st.composite
def _fault_plans(draw):
    """Per-server outage windows and transient error rates."""
    plan = {}
    for server in ("S1", "S2", "S3"):
        has_outage = draw(st.booleans())
        if has_outage:
            start = draw(st.floats(0.0, 5_000.0))
            length = draw(st.floats(100.0, 50_000.0))
            plan[server] = ("outage", (start, start + length))
        else:
            rate = draw(st.sampled_from([0.0, 0.0, 0.2, 0.5]))
            plan[server] = ("errors", rate)
    return plan


class TestFailureInjection:
    @given(_fault_plans(), st.integers(0, 10_000))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_graceful_degradation(self, sample_databases, plan, start_time):
        availability = {}
        error_seeds = {}
        for server, (kind, value) in plan.items():
            if kind == "outage":
                availability[server] = OutageSchedule([value])
            else:
                error_seeds[server] = value
        deployment = build_federation(
            scale=TEST_SCALE,
            prebuilt_databases=sample_databases,
            availability=availability,
            error_seeds=error_seeds,
        )
        deployment.clock.advance(float(start_time))
        instance = QT3.instance(0)
        reference = sample_databases["S1"].run(instance.sql).rows

        completed = failed = 0
        for _ in range(4):
            try:
                result = deployment.integrator.submit(
                    instance.sql, label="QT3"
                )
            except (FederationError, ServerUnavailable):
                failed += 1
                continue
            completed += 1
            # Any successful answer must be the correct answer.
            assert rows_close_unordered(result.rows, reference)

        patroller = deployment.integrator.patroller
        records = patroller.records()
        assert len(records) == completed + failed
        assert (
            sum(1 for r in records if r.status is QueryStatus.COMPLETED)
            == completed
        )
        assert patroller.failure_count() == failed
        # Response times are recorded for every completed query.
        for record in patroller.completed():
            assert record.response_time_ms is not None
            assert record.response_time_ms >= 0


class TestMidQueryFaults:
    """Faults landing *between* compile and dispatch within one submit.

    The integrator compiles at ``t0`` and dispatches at ``t0 +
    compile_overhead_ms``; a fault window opening inside that gap is
    invisible to the router's compile-time availability view and must be
    absorbed by the retry loop, not crash the query.
    """

    def test_outage_between_compile_and_dispatch_is_retried(
        self, sample_databases
    ):
        # Every server goes down 1ms after submit-time compile, and
        # comes back before the first retry (failure_penalty_ms=250):
        # whichever server the router picked, the dispatch at t0+2 hits
        # a down server, the retry recompiles and completes.
        availability = {
            name: OutageSchedule([(1.0, 200.0)])
            for name in ("S1", "S2", "S3")
        }
        deployment = build_federation(
            scale=TEST_SCALE,
            prebuilt_databases=sample_databases,
            availability=availability,
        )
        instance = QT1.instance(0)
        reference = sample_databases["S1"].run(instance.sql).rows

        result = deployment.integrator.submit(instance.sql, label="QT1")

        assert result.retries >= 1
        assert rows_close_unordered(result.rows, reference)
        # The retry's failure penalty is part of the observed response.
        assert result.response_ms >= deployment.integrator.failure_penalty_ms

    def test_flaky_retry_executes_at_advanced_timestamp(
        self, sample_databases
    ):
        """Regression: retries must re-dispatch at ``t0 + elapsed``.

        Every server hard-fails during [1, 100)ms — after the QCC's
        t=0 bootstrap probe, so all servers start reachable.  The first
        dispatch (t=2ms) lands in the window; the retry carries the
        250ms failure penalty, so it re-executes at ~252ms — outside
        the window — and succeeds.  A retry loop reusing the stale
        submit timestamp would dispatch back inside the window every
        time and exhaust all retries into a FederationError.
        """
        deployment = build_federation(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )
        for name, server in deployment.servers.items():
            server.errors = WindowedErrorInjector(
                [(1.0, 100.0, 1.0)], seed=11, name=name
            )
        instance = QT1.instance(1)
        reference = sample_databases["S1"].run(instance.sql).rows

        result = deployment.integrator.submit(instance.sql, label="QT1")

        assert result.retries >= 1
        assert rows_close_unordered(result.rows, reference)

    def test_unrelenting_outage_fails_cleanly(self, sample_databases):
        """When no retry can escape the fault, failure is clean."""
        availability = {
            name: OutageSchedule([(1.0, 1e9)])
            for name in ("S1", "S2", "S3")
        }
        deployment = build_federation(
            scale=TEST_SCALE,
            prebuilt_databases=sample_databases,
            availability=availability,
        )
        instance = QT1.instance(2)
        try:
            deployment.integrator.submit(instance.sql, label="QT1")
        except (FederationError, ServerUnavailable):
            pass
        else:
            raise AssertionError("expected the query to fail")
        patroller = deployment.integrator.patroller
        assert patroller.failure_count() == 1
