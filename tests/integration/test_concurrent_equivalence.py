"""Concurrent runtime vs sequential integrator: equivalence + inflation.

The event scheduler must be a pure generalisation of the sequential
runtime: a single query routed through :class:`ConcurrentRuntime` meets
no contention, so every observable — rows, response decomposition,
routing, calibrator feedback — must be *bit-identical* to
``integrator.submit`` on an identically seeded federation.  Only under
actual overlap may observed times inflate, and then the inflation must
feed the calibrator.
"""

import pytest

from repro.fed import ConcurrentRuntime, DEFAULT_CLASSES, PriorityClass
from repro.harness import build_federation
from repro.workload import TEST_SCALE, build_workload
from repro.workload.queries import QT1, QT3

# Concurrency is an II-side concern: the same physical data backs the
# sequential reference and the concurrent run.


@pytest.fixture()
def make_deployment(sample_databases):
    def factory():
        return build_federation(
            scale=TEST_SCALE, prebuilt_databases=sample_databases
        )

    return factory


class TestSingleQueryEquivalence:
    @pytest.mark.parametrize("discipline", ["ps", "fifo"])
    def test_single_query_is_bit_identical(
        self, make_deployment, discipline
    ):
        for instance in build_workload(instances_per_type=1):
            sequential = make_deployment()
            reference = sequential.integrator.submit(
                instance.sql, label=instance.label
            )

            concurrent = make_deployment()
            runtime = ConcurrentRuntime(
                concurrent.integrator, discipline=discipline
            )
            handle = runtime.submit_at(0.0, instance.sql, klass="gold")
            runtime.run()

            result = handle.result
            assert result is not None, handle.error
            # Exact equality, not approx: an uncontended queue must add
            # zero float residue to any observable.
            assert result.rows == reference.rows
            assert result.response_ms == reference.response_ms
            assert result.remote_ms == reference.remote_ms
            assert result.merge_ms == reference.merge_ms
            assert result.retries == reference.retries
            assert result.plan.servers == reference.plan.servers

    def test_single_query_calibrator_feedback_is_bit_identical(
        self, make_deployment
    ):
        instance = QT3.instance(0)

        sequential = make_deployment()
        sequential.integrator.submit(instance.sql)

        concurrent = make_deployment()
        runtime = ConcurrentRuntime(concurrent.integrator)
        runtime.submit_at(0.0, instance.sql, klass="gold")
        runtime.run()

        seq_log = sequential.meta_wrapper.runtime_log
        conc_log = concurrent.meta_wrapper.runtime_log
        assert [
            (e.server, e.fragment_signature, e.observed_ms, e.estimated_total)
            for e in seq_log
        ] == [
            (e.server, e.fragment_signature, e.observed_ms, e.estimated_total)
            for e in conc_log
        ]

    def test_sequential_runs_unaffected_by_scheduler_import(
        self, make_deployment
    ):
        """Two identically seeded sequential submits bracket a
        concurrent run: the scheduler must leave no global state."""
        instance = QT1.instance(0)
        before = make_deployment().integrator.submit(instance.sql)

        runtime = ConcurrentRuntime(make_deployment().integrator)
        runtime.submit_at(0.0, instance.sql, klass="gold")
        runtime.run()

        after = make_deployment().integrator.submit(instance.sql)
        assert before.response_ms == after.response_ms
        assert before.rows == after.rows


class TestContentionInflation:
    def test_overlapping_queries_inflate_observed_latency(
        self, make_deployment
    ):
        instance = QT3.instance(0)

        solo = make_deployment()
        runtime = ConcurrentRuntime(solo.integrator)
        baseline = runtime.submit_at(0.0, instance.sql, klass="gold")
        runtime.run()

        crowded = make_deployment()
        runtime = ConcurrentRuntime(crowded.integrator)
        handles = [
            runtime.submit_at(0.0, instance.sql, klass="gold")
            for _ in range(8)
        ]
        runtime.run()

        assert all(h.result is not None for h in handles)
        slowest = max(h.result.response_ms for h in handles)
        assert slowest > baseline.result.response_ms
        # The inflation reached the calibrator's input log, not just
        # the client-visible response times.
        observed = [e.observed_ms for e in crowded.meta_wrapper.runtime_log]
        solo_observed = [
            e.observed_ms for e in solo.meta_wrapper.runtime_log
        ]
        assert max(observed) > max(solo_observed)

    def test_run_is_replayable(self, make_deployment):
        def drive():
            deployment = make_deployment()
            runtime = ConcurrentRuntime(deployment.integrator)
            instance = QT3.instance(0)
            handles = [
                runtime.submit_at(i * 5.0, instance.sql, klass="silver")
                for i in range(6)
            ]
            runtime.run()
            return [(h.status, h.response_ms) for h in handles]

        assert drive() == drive()

    def test_sheds_require_exhausted_headroom(self, make_deployment):
        """A tight lowest-class budget under heavy overlap sheds — and
        every shed verdict carries evidence that survives the audit."""
        classes = DEFAULT_CLASSES[:2] + (
            PriorityClass("batch", rank=2, weight=0.3, budget_ms=5.0),
        )
        deployment = make_deployment()
        runtime = ConcurrentRuntime(deployment.integrator, classes=classes)
        instance = QT3.instance(0)
        for i in range(10):
            runtime.submit_at(float(i), instance.sql, klass="batch")
        runtime.run()
        sheds = runtime.sheds()
        assert sheds, "a 5 ms budget under overlap must shed"
        assert all(h.shed.reason == "budget-exhausted" for h in sheds)
        from repro.fed.admission import shed_violations

        assert shed_violations(runtime.admission.decisions) == []
