"""Property-based end-to-end correctness: federated == single-node.

For randomly generated federated queries, the integrator's result (any
routing, any replica, fragment merge at II) must equal executing the
same SQL directly on one server's database.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness import build_federation
from repro.harness.deployment import build_replica_federation
from repro.sqlengine import rows_close_unordered
from repro.workload import TEST_SCALE


@st.composite
def _federated_queries(draw):
    predicate_kind = draw(st.sampled_from(["price", "priority", "none", "both"]))
    parts = []
    if predicate_kind in ("price", "both"):
        threshold = draw(st.integers(200, 9_000))
        parts.append(f"o.totalprice > {threshold}")
    if predicate_kind in ("priority", "both"):
        values = sorted(
            draw(st.sets(st.integers(1, 5), min_size=1, max_size=3))
        )
        parts.append(f"o.priority IN ({', '.join(map(str, values))})")
    where = f" WHERE {' AND '.join(parts)}" if parts else ""
    aggregate = draw(
        st.sampled_from(
            [
                "COUNT(*) AS n",
                "COUNT(*) AS n, SUM(l.extprice) AS s",
                "COUNT(*) AS n, MAX(l.quantity) AS m",
            ]
        )
    )
    return (
        f"SELECT o.priority, {aggregate} FROM orders o "
        f"JOIN lineitem l ON o.orderkey = l.orderkey{where} "
        "GROUP BY o.priority"
    )


@pytest.fixture(scope="module")
def single_site(sample_databases):
    return build_federation(
        scale=TEST_SCALE, with_qcc=False, prebuilt_databases=sample_databases
    )


@pytest.fixture(scope="module")
def multi_site():
    return build_replica_federation(scale=TEST_SCALE, with_qcc=False)


class TestFederatedEquivalence:
    @given(_federated_queries())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_full_pushdown_matches_direct(
        self, single_site, sample_databases, sql
    ):
        federated = single_site.integrator.submit(sql)
        direct = sample_databases["S1"].run(sql)
        assert rows_close_unordered(federated.rows, direct.rows), sql

    @given(_federated_queries())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_cross_site_merge_matches_direct(
        self, multi_site, sample_databases, sql
    ):
        federated = multi_site.integrator.submit(sql)
        assert len(federated.fragments) == 2  # orders and lineitem split
        direct = sample_databases["S1"].run(sql)
        assert rows_close_unordered(federated.rows, direct.rows), sql
