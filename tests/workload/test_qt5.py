"""Tests for the QT5 extension workload (outer-join report)."""


from repro.harness import build_federation
from repro.sqlengine import parse, rows_equal_unordered
from repro.workload import (
    EXTENDED_QUERY_TYPES,
    QT5,
    QUERY_TYPES,
    TEST_SCALE,
    template_by_name,
)


class TestQt5Template:
    def test_not_in_reproduction_workload(self):
        assert QT5 not in QUERY_TYPES
        assert QT5 in EXTENDED_QUERY_TYPES

    def test_lookup_by_name(self):
        assert template_by_name("QT5") is QT5

    def test_instances_parse_with_outer_join(self):
        for instance in QT5.instances(3):
            statement = parse(instance.sql)
            assert statement.joins[0].outer

    def test_on_clause_carries_the_parameter(self):
        # the selective predicate lives in the ON clause, so customers
        # without qualifying orders are preserved, not filtered away
        instance = QT5.instance(0)
        statement = parse(instance.sql)
        assert statement.where is None
        assert "totalprice" in statement.joins[0].condition.sql()


class TestQt5Execution:
    def test_preserves_all_nations(self, sample_databases):
        db = sample_databases["S1"]
        result = db.run(QT5.instance(0).sql)
        # GROUP BY over the preserved side keeps every nation that has
        # at least one customer
        customer_nations = {
            r[1] for r in db.storage.table("customer").scan()
        }
        assert {r[0] for r in result.rows} == customer_nations

    def test_zero_order_groups_have_null_volume(self, sample_databases):
        db = sample_databases["S1"]
        # An absurd threshold preserves every customer but matches no
        # orders: COUNT(o.orderkey) = 0 and SUM over NULLs is NULL.
        sql = QT5.sql_format.format(p=10**9)
        result = db.run(sql)
        assert all(r[1] == 0 and r[2] is None for r in result.rows)

    def test_federated_matches_direct(self, sample_databases):
        deployment = build_federation(
            scale=TEST_SCALE, with_qcc=False,
            prebuilt_databases=sample_databases,
        )
        instance = QT5.instance(1)
        federated = deployment.integrator.submit(instance.sql, label="QT5")
        direct = sample_databases["S1"].run(instance.sql)
        assert rows_equal_unordered(federated.rows, direct.rows)
