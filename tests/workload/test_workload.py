"""Unit tests for the evaluation workload package."""

import pytest

from repro.sqlengine import parse
from repro.workload import (
    BASE_LEVEL,
    BENCH_SCALE,
    FIXED_ASSIGNMENT_1,
    LOAD_LEVEL,
    PAPER_SCALE,
    PHASES,
    PREFERRED_SERVER,
    QT1,
    QT2,
    QT3,
    QT4,
    QUERY_TYPES,
    WorkloadScale,
    build_workload,
    phase_by_name,
    single_type_workload,
    table_specs,
    template_by_name,
)


class TestSchema:
    def test_paper_scale_sizes(self):
        specs = {s.name: s for s in table_specs(PAPER_SCALE)}
        assert specs["orders"].row_count == 100_000
        assert specs["customer"].row_count == 1_000

    def test_scale_preserves_ratio(self):
        specs = {s.name: s for s in table_specs(BENCH_SCALE)}
        assert specs["orders"].row_count == specs["lineitem"].row_count
        assert specs["orders"].row_count > specs["customer"].row_count * 10

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            WorkloadScale(large_rows=0, small_rows=1)

    def test_all_five_tables(self):
        names = {s.name for s in table_specs()}
        assert names == {"customer", "product", "supplier", "orders", "lineitem"}


class TestQueryTemplates:
    def test_four_types(self):
        assert [t.name for t in QUERY_TYPES] == ["QT1", "QT2", "QT3", "QT4"]

    @pytest.mark.parametrize("template", QUERY_TYPES, ids=lambda t: t.name)
    def test_instances_parse(self, template):
        for instance in template.instances(5):
            statement = parse(instance.sql)
            assert statement.group_by  # all QTs aggregate

    def test_instances_deterministic(self):
        assert QT1.instance(3).sql == QT1.instance(3).sql
        assert QT1.instance(3, seed=7).sql != QT1.instance(3, seed=8).sql

    def test_instances_vary_parameters(self):
        sqls = {QT1.instance(i).sql for i in range(10)}
        assert len(sqls) > 1

    def test_qt3_more_selective_than_qt1(self):
        def param_of(instance):
            # the parameter follows 'totalprice > '
            tail = instance.sql.split("totalprice > ")[1]
            return float(tail.split(" ")[0])

        qt1_params = [param_of(QT1.instance(i)) for i in range(10)]
        qt3_params = [param_of(QT3.instance(i)) for i in range(10)]
        assert min(qt3_params) > max(qt1_params)

    def test_qt4_joins_three_tables(self):
        statement = parse(QT4.instance(0).sql)
        assert len(statement.table_bindings()) == 3

    def test_template_by_name(self):
        assert template_by_name("QT2") is QT2
        with pytest.raises(KeyError):
            template_by_name("QT9")


class TestPhases:
    def test_eight_phases(self):
        assert len(PHASES) == 8

    def test_table1_pattern(self):
        """Table 1 verbatim: S1 loaded in 5-8, S2 in 3,4,7,8, S3 even."""
        expected = {
            "S1": [False, False, False, False, True, True, True, True],
            "S2": [False, False, True, True, False, False, True, True],
            "S3": [False, True, False, True, False, True, False, True],
        }
        for server, pattern in expected.items():
            actual = [server in phase.loaded for phase in PHASES]
            assert actual == pattern, server

    def test_levels(self):
        phase = phase_by_name("Phase2")
        levels = phase.levels(("S1", "S2", "S3"))
        assert levels == {"S1": BASE_LEVEL, "S2": BASE_LEVEL, "S3": LOAD_LEVEL}

    def test_condition_labels(self):
        phase = phase_by_name("Phase4")
        assert phase.condition("S2") == "Load"
        assert phase.condition("S1") == "Base"

    def test_unknown_phase(self):
        with pytest.raises(KeyError):
            phase_by_name("Phase9")

    def test_fixed_assignment_1(self):
        assert FIXED_ASSIGNMENT_1 == {
            "QT1": "S1",
            "QT2": "S2",
            "QT3": "S1",
            "QT4": "S3",
        }
        assert PREFERRED_SERVER == "S3"


class TestGenerator:
    def test_uniform_distribution(self):
        workload = build_workload(instances_per_type=10)
        assert len(workload) == 40
        counts = {}
        for instance in workload:
            counts[instance.query_type] = counts.get(instance.query_type, 0) + 1
        assert counts == {"QT1": 10, "QT2": 10, "QT3": 10, "QT4": 10}

    def test_deterministic_shuffle(self):
        a = [q.sql for q in build_workload(seed=7)]
        b = [q.sql for q in build_workload(seed=7)]
        assert a == b

    def test_round_robin_without_shuffle(self):
        workload = build_workload(instances_per_type=2, shuffle=False)
        assert [q.query_type for q in workload[:4]] == [
            "QT1", "QT2", "QT3", "QT4",
        ]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            build_workload(instances_per_type=0)

    def test_single_type_workload(self):
        workload = single_type_workload(QT2, count=3)
        assert len(workload) == 3
        assert all(q.query_type == "QT2" for q in workload)
