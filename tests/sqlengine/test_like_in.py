"""Unit tests for LIKE and IN predicates."""

import pytest

from repro.sqlengine import (
    Column,
    ColumnType,
    InList,
    Like,
    ParseError,
    Schema,
    TypeMismatchError,
    parse_expression,
)
from repro.sqlengine.catalog import ColumnStats, TableStats
from repro.sqlengine.cost import StatsContext, estimate_selectivity

SCHEMA = Schema(
    (Column("s", ColumnType.STR, "t"), Column("n", ColumnType.INT, "t"))
)


def ev(text, row):
    return parse_expression(text).compile(SCHEMA)(row)


class TestLikeParsing:
    def test_like(self):
        expr = parse_expression("s LIKE 'abc%'")
        assert isinstance(expr, Like)
        assert expr.pattern == "abc%"
        assert not expr.negated

    def test_not_like(self):
        expr = parse_expression("s NOT LIKE '%x'")
        assert expr.negated

    def test_sql_round_trip(self):
        for text in ("s LIKE 'a%_b'", "s NOT LIKE 'it''s%'"):
            once = parse_expression(text).sql()
            assert parse_expression(once).sql() == once


class TestLikeEvaluation:
    @pytest.mark.parametrize(
        "pattern,value,expected",
        [
            ("abc", "abc", True),
            ("abc", "abcd", False),
            ("abc%", "abcdef", True),
            ("%def", "abcdef", True),
            ("%cd%", "abcdef", True),
            ("a_c", "abc", True),
            ("a_c", "abbc", False),
            ("%", "", True),
            ("a.c", "abc", False),  # regex metachars are escaped
        ],
    )
    def test_patterns(self, pattern, value, expected):
        escaped = pattern.replace("'", "''")
        assert ev(f"s LIKE '{escaped}'", (value, 0)) is expected

    def test_negated(self):
        assert ev("s NOT LIKE 'a%'", ("abc", 0)) is False
        assert ev("s NOT LIKE 'a%'", ("xyz", 0)) is True

    def test_null_propagates(self):
        assert ev("s LIKE 'a%'", (None, 0)) is None

    def test_non_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            ev("n LIKE 'a%'", ("x", 5))


class TestInParsing:
    def test_in(self):
        expr = parse_expression("n IN (1, 2, 3)")
        assert isinstance(expr, InList)
        assert expr.values == (1, 2, 3)

    def test_not_in(self):
        assert parse_expression("n NOT IN (1)").negated

    def test_negative_literals(self):
        expr = parse_expression("n IN (-1, 2)")
        assert expr.values == (-1, 2)

    def test_strings(self):
        expr = parse_expression("s IN ('a', 'b')")
        assert expr.values == ("a", "b")

    def test_non_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("n IN (n, 2)")

    def test_sql_round_trip(self):
        once = parse_expression("n NOT IN (1, 2)").sql()
        assert parse_expression(once).sql() == once


class TestInEvaluation:
    def test_membership(self):
        assert ev("n IN (1, 2, 3)", ("", 2)) is True
        assert ev("n IN (1, 2, 3)", ("", 9)) is False
        assert ev("n NOT IN (1, 2)", ("", 9)) is True

    def test_null_propagates(self):
        assert ev("n IN (1, 2)", ("", None)) is None


class TestSelectivity:
    STATS = StatsContext(
        {
            "t": TableStats(
                row_count=100,
                column_stats={
                    "n": ColumnStats(n_distinct=20, min_value=1, max_value=20),
                },
            )
        }
    )

    def sel(self, text):
        return estimate_selectivity(parse_expression(text), self.STATS)

    def test_in_scales_with_members(self):
        assert self.sel("t.n IN (1)") == pytest.approx(1 / 20)
        assert self.sel("t.n IN (1, 2, 3)") == pytest.approx(3 / 20)

    def test_in_duplicates_collapse(self):
        assert self.sel("t.n IN (1, 1, 1)") == pytest.approx(1 / 20)

    def test_not_in_complements(self):
        assert self.sel("t.n NOT IN (1, 2)") == pytest.approx(18 / 20)

    def test_like_prefix_more_selective_than_wildcard(self):
        prefix = self.sel("t.s LIKE 'abcdef%'")
        anywhere = self.sel("t.s LIKE '%abcdef%'")
        assert prefix < anywhere


class TestEndToEnd:
    def test_like_in_where_clause(self, sample_databases):
        db = sample_databases["S1"]
        rows = db.run(
            "SELECT COUNT(*) FROM customer WHERE segment LIKE 'M%'"
        ).rows
        expected = sum(
            1
            for r in db.storage.table("customer").scan()
            if r[3].startswith("M")
        )
        assert rows == [(expected,)]

    def test_in_where_clause(self, sample_databases):
        db = sample_databases["S1"]
        rows = db.run(
            "SELECT COUNT(*) FROM customer WHERE nation IN (1, 2, 3)"
        ).rows
        expected = sum(
            1
            for r in db.storage.table("customer").scan()
            if r[1] in (1, 2, 3)
        )
        assert rows == [(expected,)]

    def test_federated_like_query(self, sample_databases):
        from repro.harness import build_federation
        from repro.workload import TEST_SCALE

        deployment = build_federation(
            scale=TEST_SCALE, with_qcc=False,
            prebuilt_databases=sample_databases,
        )
        result = deployment.integrator.submit(
            "SELECT segment, COUNT(*) AS n FROM customer "
            "WHERE segment NOT LIKE 'A%' AND nation IN (1, 2, 3, 4, 5) "
            "GROUP BY segment"
        )
        direct = sample_databases["S1"].run(
            "SELECT segment, COUNT(*) AS n FROM customer "
            "WHERE segment NOT LIKE 'A%' AND nation IN (1, 2, 3, 4, 5) "
            "GROUP BY segment"
        )
        from repro.sqlengine import rows_equal_unordered

        assert rows_equal_unordered(result.rows, direct.rows)
