"""Unit tests for binding and query-block normalisation."""

import pytest

from repro.sqlengine import BindError, bind, parse


def _bind(sql, db):
    return bind(parse(sql), db.catalog)


class TestBindingBasics:
    def test_unknown_table(self, tiny_db):
        with pytest.raises(BindError, match="unknown table"):
            _bind("SELECT * FROM nope", tiny_db)

    def test_unknown_column(self, tiny_db):
        with pytest.raises(BindError):
            _bind("SELECT missing FROM emp", tiny_db)

    def test_duplicate_binding(self, tiny_db):
        with pytest.raises(BindError, match="duplicate"):
            _bind("SELECT * FROM emp, emp", tiny_db)

    def test_self_join_with_aliases_allowed(self, tiny_db):
        block = _bind(
            "SELECT a.empno FROM emp a, emp b WHERE a.empno = b.empno",
            tiny_db,
        )
        assert set(block.relations) == {"a", "b"}

    def test_ambiguous_column(self, tiny_db):
        with pytest.raises(BindError, match="ambiguous"):
            _bind("SELECT deptno FROM emp, dept", tiny_db)


class TestPredicateClassification:
    def test_local_predicate_pushed_to_relation(self, tiny_db):
        block = _bind("SELECT empno FROM emp WHERE salary > 100", tiny_db)
        assert block.relations["emp"].predicate is not None
        assert block.residual is None
        assert block.join_edges == ()

    def test_equijoin_becomes_edge(self, tiny_db):
        block = _bind(
            "SELECT e.empno FROM emp e, dept d WHERE e.deptno = d.deptno",
            tiny_db,
        )
        assert len(block.join_edges) == 1
        edge = block.join_edges[0]
        assert {edge.left_binding, edge.right_binding} == {"e", "d"}
        assert block.residual is None

    def test_join_on_clause_same_as_where(self, tiny_db):
        via_on = _bind(
            "SELECT e.empno FROM emp e JOIN dept d ON e.deptno = d.deptno",
            tiny_db,
        )
        via_where = _bind(
            "SELECT e.empno FROM emp e, dept d WHERE e.deptno = d.deptno",
            tiny_db,
        )
        assert via_on.join_edges == via_where.join_edges

    def test_non_equijoin_is_residual(self, tiny_db):
        block = _bind(
            "SELECT e.empno FROM emp e, dept d WHERE e.deptno < d.deptno",
            tiny_db,
        )
        assert block.join_edges == ()
        assert block.residual is not None

    def test_mixed_conjuncts_split(self, tiny_db):
        block = _bind(
            "SELECT e.empno FROM emp e, dept d "
            "WHERE e.deptno = d.deptno AND e.salary > 10 AND d.budget < 50",
            tiny_db,
        )
        assert len(block.join_edges) == 1
        assert block.relations["e"].predicate is not None
        assert block.relations["d"].predicate is not None

    def test_bare_columns_qualified(self, tiny_db):
        block = _bind("SELECT salary FROM emp WHERE salary > 10", tiny_db)
        assert block.relations["emp"].predicate.sql() == "emp.salary > 10"


class TestSelectListBinding:
    def test_select_star_expansion(self, tiny_db):
        block = _bind("SELECT * FROM dept", tiny_db)
        assert [c.name for c in block.output_schema.columns] == [
            "deptno",
            "budget",
        ]

    def test_star_table_expansion(self, tiny_db):
        block = _bind("SELECT d.* FROM emp e, dept d WHERE e.deptno = d.deptno", tiny_db)
        assert len(block.output_schema) == 2

    def test_output_names_and_types(self, tiny_db):
        block = _bind(
            "SELECT empno AS id, salary * 2 FROM emp", tiny_db
        )
        names = [c.name for c in block.output_schema.columns]
        assert names == ["id", "col1"]
        assert block.output_schema.columns[1].ctype.value == "FLOAT"


class TestAggregationValidation:
    def test_valid_group_by(self, tiny_db):
        block = _bind(
            "SELECT deptno, COUNT(*) FROM emp GROUP BY deptno", tiny_db
        )
        assert block.has_aggregation

    def test_global_aggregate(self, tiny_db):
        block = _bind("SELECT COUNT(*) FROM emp", tiny_db)
        assert block.has_aggregation
        assert block.group_by == ()

    def test_non_grouped_item_rejected(self, tiny_db):
        with pytest.raises(BindError, match="GROUP BY"):
            _bind("SELECT empno, COUNT(*) FROM emp GROUP BY deptno", tiny_db)

    def test_having_without_group_rejected(self, tiny_db):
        with pytest.raises(BindError, match="HAVING"):
            _bind("SELECT empno FROM emp HAVING empno > 1", tiny_db)

    def test_group_key_expression_allowed(self, tiny_db):
        block = _bind(
            "SELECT deptno % 2, COUNT(*) FROM emp GROUP BY deptno % 2",
            tiny_db,
        )
        assert block.has_aggregation


class TestJoinEdgeOrientation:
    def test_oriented(self, tiny_db):
        block = _bind(
            "SELECT e.empno FROM emp e, dept d WHERE e.deptno = d.deptno",
            tiny_db,
        )
        edge = block.join_edges[0]
        left_col, right_col = edge.oriented(frozenset({"e"}))
        assert left_col.startswith("e.")
        left_col, right_col = edge.oriented(frozenset({"d"}))
        assert left_col.startswith("d.")

    def test_connects(self, tiny_db):
        block = _bind(
            "SELECT e.empno FROM emp e, dept d WHERE e.deptno = d.deptno",
            tiny_db,
        )
        edge = block.join_edges[0]
        assert edge.connects(frozenset({"e"}), frozenset({"d"}))
        assert not edge.connects(frozenset({"e"}), frozenset({"x"}))
