"""Unit tests for the vectorized engine's batch kernels and operators.

Covers the kernel contract (``Expression.compile_batch``): SQL NULL
semantics, three-valued AND/OR with short-circuit selection vectors,
the default row-engine adapter, outer-join NULL padding, and aggregate
edge cases — each checked against the row engine's semantics.
"""

from __future__ import annotations

import pytest

from repro.sqlengine import (
    And,
    Arithmetic,
    Column,
    ColumnRef,
    ColumnType,
    Comparison,
    Database,
    DEFAULT_BATCH_SIZE,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Schema,
    SqlError,
    TypeMismatchError,
    execute_plan,
    resolve_engine,
)
from repro.sqlengine.physical import ExecutionContext, MaterializedInput

SCHEMA = Schema(
    (
        Column("a", ColumnType.INT, "t"),
        Column("b", ColumnType.FLOAT, "t"),
        Column("s", ColumnType.STR, "t"),
    )
)

ROWS = [
    (4, 2.5, "Hi"),
    (None, 1.0, "Hello"),
    (7, None, None),
    (0, -1.5, "World"),
]


def kernel(expr, rows=ROWS):
    return expr.compile_batch(SCHEMA)(rows)


def agrees_with_row_engine(expr, rows=ROWS):
    evaluate = expr.compile(SCHEMA)
    expected = [evaluate(row) for row in rows]
    assert kernel(expr, rows) == expected
    return expected


class TestScalarKernels:
    def test_literal_broadcast(self):
        assert kernel(Literal(42)) == [42, 42, 42, 42]
        assert kernel(Literal(None)) == [None] * 4

    def test_column_extraction(self):
        assert kernel(ColumnRef("a")) == [4, None, 7, 0]
        assert kernel(ColumnRef("t.s")) == ["Hi", "Hello", None, "World"]

    def test_empty_batch(self):
        assert kernel(Comparison(">", ColumnRef("a"), Literal(1)), []) == []

    def test_comparison_null_propagation(self):
        out = kernel(Comparison(">", ColumnRef("a"), Literal(1)))
        assert out == [True, None, True, False]

    def test_comparison_null_literal(self):
        assert kernel(Comparison("=", ColumnRef("a"), Literal(None))) == (
            [None] * 4
        )

    def test_comparison_column_vs_column(self):
        agrees_with_row_engine(Comparison("<", ColumnRef("b"), ColumnRef("a")))

    def test_comparison_type_mismatch_message_matches_row_engine(self):
        expr = Comparison(">", ColumnRef("a"), Literal("zzz"))
        with pytest.raises(TypeMismatchError) as batch_err:
            kernel(expr)
        with pytest.raises(TypeMismatchError) as row_err:
            expr.compile(SCHEMA)(ROWS[0])
        assert str(batch_err.value) == str(row_err.value)

    def test_arithmetic_null_and_division_by_zero(self):
        expr = Arithmetic("/", Literal(10), ColumnRef("a"))
        assert agrees_with_row_engine(expr) == [2.5, None, 10 / 7, None]

    def test_arithmetic_literal_fast_path(self):
        expr = Arithmetic("*", ColumnRef("b"), Literal(2.0))
        assert agrees_with_row_engine(expr) == [5.0, 2.0, None, -3.0]

    def test_is_null(self):
        assert kernel(IsNull(ColumnRef("a"))) == [False, True, False, False]
        assert kernel(IsNull(ColumnRef("a"), negated=True)) == [
            True,
            False,
            True,
            True,
        ]

    def test_like_and_in_list(self):
        agrees_with_row_engine(Like(ColumnRef("s"), "H%"))
        agrees_with_row_engine(InList(ColumnRef("a"), (0, 4)))


class TestThreeValuedLogicKernels:
    def truth(self, value):
        return Literal(value)

    @pytest.mark.parametrize("left", [True, False, None])
    @pytest.mark.parametrize("right", [True, False, None])
    def test_and_or_truth_tables(self, left, right):
        row = (1, 1.0, "x")
        for connective in (And, Or):
            expr = connective(self.truth(left), self.truth(right))
            assert expr.compile_batch(SCHEMA)([row]) == [
                expr.compile(SCHEMA)(row)
            ]

    def test_not_kernel(self):
        expr = Not(Comparison(">", ColumnRef("a"), Literal(1)))
        assert kernel(expr) == [False, None, False, True]

    def test_and_short_circuit_selection_vector(self):
        # The right side must only be evaluated on surviving rows: a
        # type error lurking behind a False left conjunct never fires.
        safe = Comparison("=", ColumnRef("s"), Literal("Hi"))
        explosive = Comparison(">", ColumnRef("a"), Literal("boom"))
        rows = [(4, 2.5, "nope")]
        assert And(safe, explosive).compile_batch(SCHEMA)(rows) == [False]
        with pytest.raises(TypeMismatchError):
            And(explosive, safe).compile_batch(SCHEMA)(rows)

    def test_or_short_circuit_selection_vector(self):
        safe = Comparison("=", ColumnRef("s"), Literal("Hi"))
        explosive = Comparison(">", ColumnRef("a"), Literal("boom"))
        rows = [(4, 2.5, "Hi")]
        assert Or(safe, explosive).compile_batch(SCHEMA)(rows) == [True]


@pytest.fixture()
def joined_db():
    database = Database("vec")
    database.create_table(
        "dept",
        Schema(
            (Column("deptno", ColumnType.INT), Column("name", ColumnType.STR))
        ),
    )
    database.load_rows(
        "dept", [(1, "eng"), (2, "ops"), (3, "sales"), (4, "empty")]
    )
    database.create_table(
        "emp",
        Schema(
            (
                Column("empno", ColumnType.INT),
                Column("deptno", ColumnType.INT),
                Column("salary", ColumnType.INT),
            )
        ),
    )
    database.load_rows(
        "emp",
        [(10, 1, 100), (11, 1, 200), (12, 2, 150), (13, None, 50)],
    )
    return database


def both_engines(database, sql):
    plan = database.explain(sql)[0].plan
    row = execute_plan(plan, database.storage, database.params, engine="row")
    vec = execute_plan(
        plan, database.storage, database.params, engine="vector"
    )
    return row, vec


class TestOperators:
    def test_outer_join_null_padding(self, joined_db):
        row, vec = both_engines(
            joined_db,
            "SELECT d.name, e.empno FROM dept d "
            "LEFT JOIN emp e ON d.deptno = e.deptno",
        )
        assert row.rows == vec.rows
        assert ("empty", None) in vec.rows
        assert ("sales", None) in vec.rows
        assert row.meter.cpu_ms == vec.meter.cpu_ms

    def test_outer_join_with_residual(self, joined_db):
        row, vec = both_engines(
            joined_db,
            "SELECT d.name, e.empno FROM dept d "
            "LEFT JOIN emp e ON d.deptno = e.deptno AND e.salary > 120",
        )
        assert row.rows == vec.rows
        assert ("eng", 11) in vec.rows
        assert ("eng", 10) not in vec.rows

    def test_null_join_keys_never_match(self, joined_db):
        row, vec = both_engines(
            joined_db,
            "SELECT e.empno, d.name FROM emp e "
            "JOIN dept d ON e.deptno = d.deptno",
        )
        assert row.rows == vec.rows
        assert all(empno != 13 for empno, _ in vec.rows)

    def test_empty_input_global_aggregate(self, joined_db):
        row, vec = both_engines(
            joined_db,
            "SELECT COUNT(*), SUM(e.salary), MIN(e.salary) FROM emp e "
            "WHERE e.salary > 99999",
        )
        assert row.rows == vec.rows == [(0, None, None)]
        assert row.meter.cpu_ms == vec.meter.cpu_ms

    def test_distinct_aggregate(self, joined_db):
        row, vec = both_engines(
            joined_db,
            "SELECT COUNT(DISTINCT e.deptno) FROM emp e",
        )
        assert row.rows == vec.rows == [(2,)]


class TestEngineMachinery:
    def test_default_adapter_chunks_row_stream(self, joined_db):
        # MaterializedInput has a native vector path; go through the
        # base-class adapter explicitly to test the legacy bridge.
        data = [(i,) for i in range(DEFAULT_BATCH_SIZE + 5)]
        plan = MaterializedInput(
            "m", Schema((Column("x", ColumnType.INT),)), data
        )
        ctx = ExecutionContext(
            storage=joined_db.storage,
            params=joined_db.params,
            engine="vector",
        )
        batches = list(super(MaterializedInput, plan).rows_batched(ctx))
        assert [len(b) for b in batches] == [DEFAULT_BATCH_SIZE, 5]
        assert [r for b in batches for r in b] == data

    def test_resolve_engine_validates(self):
        assert resolve_engine("row") == "row"
        assert resolve_engine("vector") == "vector"
        assert resolve_engine("columnar") == "columnar"
        assert resolve_engine(None) in ("row", "vector", "columnar")
        with pytest.raises(SqlError):
            resolve_engine("turbo")

    def test_small_batch_size_equivalent(self, joined_db):
        plan = joined_db.explain(
            "SELECT d.name, COUNT(*) FROM dept d "
            "JOIN emp e ON d.deptno = e.deptno GROUP BY d.name"
        )[0].plan
        baseline = execute_plan(
            plan, joined_db.storage, joined_db.params, engine="row"
        )
        tiny = execute_plan(
            plan,
            joined_db.storage,
            joined_db.params,
            engine="vector",
            batch_size=2,
        )
        assert tiny.rows == baseline.rows
        assert tiny.meter.cpu_ms == baseline.meter.cpu_ms
