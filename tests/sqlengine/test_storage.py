"""Unit tests for heap storage and hash indexes."""

import pytest

from repro.sqlengine import (
    Catalog,
    Column,
    ColumnType,
    Schema,
    SchemaError,
    StorageError,
    StorageManager,
)


def _schema():
    return Schema((Column("id", ColumnType.INT), Column("v", ColumnType.STR)))


@pytest.fixture()
def storage():
    manager = StorageManager(Catalog())
    manager.create_table("t", _schema())
    return manager


class TestHeapTable:
    def test_insert_and_scan(self, storage):
        table = storage.table("t")
        table.insert((1, "a"))
        table.insert((2, "b"))
        assert list(table.scan()) == [(1, "a"), (2, "b")]
        assert len(table) == 2

    def test_insert_validates(self, storage):
        with pytest.raises(SchemaError):
            storage.table("t").insert((1,))

    def test_fetch_by_rid(self, storage):
        table = storage.table("t")
        table.insert((1, "a"))
        assert table.fetch(0) == (1, "a")


class TestHashIndex:
    def test_lookup_matches_scan(self, storage):
        table = storage.table("t")
        table.insert_many([(i % 3, str(i)) for i in range(30)])
        index = table.create_index("id")
        for key in (0, 1, 2):
            via_index = sorted(table.fetch(rid) for rid in index.lookup(key))
            via_scan = sorted(row for row in table.scan() if row[0] == key)
            assert via_index == via_scan

    def test_lookup_missing_key(self, storage):
        table = storage.table("t")
        table.create_index("id")
        assert list(table.index_on("id").lookup(99)) == []

    def test_null_keys_not_indexed(self, storage):
        table = storage.table("t")
        table.insert((None, "x"))
        index = table.create_index("id")
        assert len(index) == 0
        assert list(index.lookup(None)) == []

    def test_index_maintained_on_insert(self, storage):
        table = storage.table("t")
        index = table.create_index("id")
        table.insert((7, "x"))
        assert [table.fetch(r) for r in index.lookup(7)] == [(7, "x")]

    def test_duplicate_index_rejected(self, storage):
        table = storage.table("t")
        table.create_index("id")
        with pytest.raises(StorageError):
            table.create_index("id")


class TestStorageManager:
    def test_duplicate_table(self, storage):
        with pytest.raises(StorageError):
            storage.create_table("t", _schema())

    def test_unknown_table(self, storage):
        with pytest.raises(StorageError):
            storage.table("missing")

    def test_drop_table(self, storage):
        storage.drop_table("t")
        assert not storage.has_table("t")
        assert not storage.catalog.has_table("t")

    def test_load_rows_refreshes_stats(self, storage):
        storage.load_rows("t", [(1, "a"), (2, "b"), (2, "c")])
        stats = storage.catalog.lookup("t").stats
        assert stats.row_count == 3
        assert stats.for_column("id").n_distinct == 2

    def test_create_index_updates_catalog(self, storage):
        storage.create_index("t", "id")
        assert storage.catalog.lookup("t").has_index_on("id")

    def test_schema_qualified_by_table_name(self, storage):
        schema = storage.table("t").schema
        assert schema.columns[0].table == "t"
