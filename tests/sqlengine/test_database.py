"""Unit tests for the Database facade."""


from repro.sqlengine import (
    Column,
    ColumnType,
    Database,
    Schema,
    ServerProfile,
)


class TestDatabaseFacade:
    def test_run_simple_query(self, tiny_db):
        result = tiny_db.run("SELECT COUNT(*) FROM dept")
        assert result.rows == [(20,)]
        assert result.meter.total_ms > 0

    def test_explain_does_not_execute(self, tiny_db):
        before = tiny_db.row_count("dept")
        plans = tiny_db.explain("SELECT * FROM dept")
        assert plans
        assert tiny_db.row_count("dept") == before

    def test_create_and_load(self):
        db = Database("fresh")
        schema = Schema((Column("x", ColumnType.INT),))
        db.create_table("nums", schema)
        assert db.load_rows("nums", [(1,), (2,)]) == 2
        assert db.run("SELECT SUM(x) FROM nums").rows == [(3,)]

    def test_analyze_refreshes_stats(self):
        db = Database("fresh")
        db.create_table("nums", Schema((Column("x", ColumnType.INT),)))
        db.storage.table("nums").insert_many([(i,) for i in range(10)])
        assert db.catalog.lookup("nums").stats.row_count == 0
        db.analyze("nums")
        assert db.catalog.lookup("nums").stats.row_count == 10

    def test_profile_attached(self):
        profile = ServerProfile("fast", cpu_speed=3.0)
        db = Database("p", profile=profile)
        assert db.profile.cpu_speed == 3.0
        assert db.optimizer.profile is profile

    def test_create_index_via_facade(self, tiny_db):
        tiny_db.create_index("emp", "empno")
        assert tiny_db.catalog.lookup("emp").has_index_on("empno")
        result = tiny_db.run("SELECT * FROM emp WHERE empno = 5")
        assert result.row_count == 1
