"""Unit tests for the SQL parser."""

import pytest

from repro.sqlengine import ParseError, parse, parse_expression
from repro.sqlengine.parser import tokenize


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.kind for t in tokens[:-1]] == ["KEYWORD"] * 3
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_numbers_and_strings(self):
        tokens = tokenize("12 3.5 'a''b'")
        assert [t.kind for t in tokens[:-1]] == ["NUMBER", "NUMBER", "STRING"]

    def test_operators(self):
        tokens = tokenize("<= >= <> != = < >")
        assert all(t.kind == "OP" for t in tokens[:-1])

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("SELECT @")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"


class TestSelectParsing:
    def test_minimal(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.is_select_star
        assert stmt.tables[0].name == "t"

    def test_items_with_aliases(self):
        stmt = parse("SELECT a AS x, b y, c FROM t")
        assert [i.alias for i in stmt.items] == ["x", "y", None]

    def test_table_alias_forms(self):
        stmt = parse("SELECT * FROM orders AS o, customer c")
        assert stmt.tables[0].binding == "o"
        assert stmt.tables[1].binding == "c"

    def test_join_clause(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.y INNER JOIN c ON b.z = c.z")
        assert len(stmt.joins) == 2
        assert stmt.joins[0].table.name == "b"

    def test_where_group_having_order_limit(self):
        stmt = parse(
            "SELECT a, COUNT(*) AS n FROM t WHERE a > 1 "
            "GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC, n LIMIT 7"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True
        assert stmt.limit == 7

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_star_table(self):
        stmt = parse("SELECT t.*, u.a FROM t, u")
        assert stmt.items[0].star_table == "t"
        assert stmt.items[1].expr is not None

    def test_between_desugars(self):
        stmt = parse("SELECT * FROM t WHERE a BETWEEN 1 AND 5")
        assert "a >= 1" in stmt.where.sql()
        assert "a <= 5" in stmt.where.sql()

    def test_aggregates(self):
        stmt = parse("SELECT COUNT(*), SUM(a), AVG(DISTINCT b) FROM t")
        rendered = [i.expr.sql() for i in stmt.items]
        assert rendered == ["COUNT(*)", "SUM(a)", "AVG(DISTINCT b)"]

    def test_limit_must_be_integer(self):
        with pytest.raises(ParseError, match="integer"):
            parse("SELECT * FROM t LIMIT 1.5")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t garbage !")

    def test_missing_from(self):
        with pytest.raises(ParseError, match="FROM"):
            parse("SELECT a")

    def test_unknown_function(self):
        with pytest.raises(ParseError, match="unknown function"):
            parse("SELECT NOPE(a) FROM t")


class TestExpressionParsing:
    def test_precedence_and_over_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert type(expr).__name__ == "Or"

    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.compile(_EMPTY)(()) == 7

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.compile(_EMPTY)(()) == 9

    def test_unary_minus(self):
        assert parse_expression("-5 + 1").compile(_EMPTY)(()) == -4

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert type(expr).__name__ == "Not"

    def test_literals(self):
        assert parse_expression("NULL").value is None
        assert parse_expression("TRUE").value is True
        assert parse_expression("FALSE").value is False
        assert parse_expression("3.25").value == 3.25
        assert parse_expression("'it''s'").value == "it's"

    def test_is_null_forms(self):
        assert parse_expression("a IS NULL").negated is False
        assert parse_expression("a IS NOT NULL").negated is True

    def test_qualified_reference(self):
        expr = parse_expression("t.a")
        assert expr.name == "t.a"


from repro.sqlengine import Schema  # noqa: E402

_EMPTY = Schema(())


class TestSqlRoundTrip:
    CASES = [
        "SELECT * FROM t",
        "SELECT a AS x, COUNT(*) AS n FROM t AS q WHERE q.a > 1 GROUP BY a",
        "SELECT a FROM t JOIN u ON t.x = u.y WHERE (a = 1 OR b = 2) ORDER BY a DESC LIMIT 3",
        "SELECT DISTINCT a, b FROM t WHERE s = 'x''y' AND a IS NOT NULL",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_fixed_point(self, sql):
        once = parse(sql).sql()
        twice = parse(once).sql()
        assert once == twice
