"""Fuzzing the parser: arbitrary input must parse or raise ParseError.

The parser is the outermost untrusted-input surface of the engine; it
must never leak a raw IndexError/AttributeError/RecursionError to the
caller, no matter the input.
"""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.sqlengine import ParseError, parse, parse_statement
from repro.sqlengine.parser import tokenize


class TestTokenizerFuzz:
    @given(st.text(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_tokenize_total(self, text):
        try:
            tokens = tokenize(text)
        except ParseError:
            return
        assert tokens[-1].kind == "EOF"

    @given(st.text(alphabet="SELECT FROM WHERE*(),.'0123456789abc=<>", max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_parse_never_raises_foreign_exceptions(self, text):
        try:
            parse(text)
        except ParseError:
            pass

    @given(st.text(max_size=120))
    @settings(max_examples=200, deadline=None)
    @example("SELECT")
    @example("SELECT * FROM")
    @example("SELECT * FROM t WHERE")
    @example("SELECT * FROM t GROUP BY")
    @example("INSERT INTO")
    @example("UPDATE t SET")
    @example("((((((((((")
    def test_parse_statement_total(self, text):
        try:
            parse_statement(text)
        except ParseError:
            pass


class TestMalformedStatements:
    CASES = [
        "SELECT FROM t",
        "SELECT a FROM t WHERE AND b",
        "SELECT a FROM t ORDER",
        "SELECT a, FROM t",
        "SELECT a FROM t LIMIT",
        "SELECT a FROM t JOIN u",
        "SELECT a FROM t JOIN u ON",
        "SELECT COUNT( FROM t",
        "INSERT INTO t VALUES",
        "INSERT INTO t (a VALUES (1)",
        "UPDATE t SET a",
        "UPDATE t a = 1",
        "DELETE t WHERE a = 1",
        "SELECT a FROM t WHERE a IN ()",
        "SELECT a FROM t WHERE a LIKE b",
        "SELECT a FROM t t2 t3",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_raises_parse_error(self, sql):
        with pytest.raises(ParseError):
            parse_statement(sql)
