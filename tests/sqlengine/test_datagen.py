"""Unit tests for deterministic data generation."""


from repro.sqlengine import (
    Choice,
    ColumnType,
    Database,
    ForeignKey,
    Nullable,
    RandomString,
    Serial,
    TableSpec,
    UniformFloat,
    UniformInt,
    ZipfInt,
    populate,
)


def _spec(row_count=100):
    return TableSpec(
        "t",
        (
            ("id", ColumnType.INT, Serial()),
            ("fk", ColumnType.INT, ForeignKey(10)),
            ("val", ColumnType.FLOAT, UniformFloat(0.0, 1.0)),
            ("cat", ColumnType.STR, Choice(("a", "b"))),
            ("skew", ColumnType.INT, ZipfInt(100)),
            ("maybe", ColumnType.INT, Nullable(UniformInt(1, 5), 0.5)),
            ("name", ColumnType.STR, RandomString(6)),
        ),
        row_count=row_count,
    )


class TestDeterminism:
    def test_same_seed_same_rows(self):
        a = list(_spec().generate_rows(seed=9))
        b = list(_spec().generate_rows(seed=9))
        assert a == b

    def test_different_seed_different_rows(self):
        a = list(_spec().generate_rows(seed=9))
        b = list(_spec().generate_rows(seed=10))
        assert a != b

    def test_different_tables_different_streams(self):
        spec_a = _spec()
        spec_b = TableSpec("other", spec_a.columns, spec_a.row_count)
        assert list(spec_a.generate_rows(7)) != list(spec_b.generate_rows(7))


class TestGenerators:
    def test_serial_is_sequential(self):
        rows = list(_spec().generate_rows(7))
        assert [r[0] for r in rows] == list(range(1, 101))

    def test_foreign_keys_in_range(self):
        rows = list(_spec().generate_rows(7))
        assert all(1 <= r[1] <= 10 for r in rows)

    def test_uniform_float_in_range(self):
        rows = list(_spec().generate_rows(7))
        assert all(0.0 <= r[2] <= 1.0 for r in rows)

    def test_choice_values(self):
        rows = list(_spec().generate_rows(7))
        assert {r[3] for r in rows} <= {"a", "b"}

    def test_zipf_in_range_and_skewed(self):
        rows = list(_spec(row_count=2000).generate_rows(7))
        values = [r[4] for r in rows]
        assert all(1 <= v <= 100 for v in values)
        low_half = sum(1 for v in values if v <= 50)
        assert low_half > len(values) * 0.55  # skewed toward small keys

    def test_nullable_rate(self):
        rows = list(_spec(row_count=2000).generate_rows(7))
        nulls = sum(1 for r in rows if r[5] is None)
        assert 0.4 < nulls / len(rows) < 0.6

    def test_random_string_length(self):
        rows = list(_spec().generate_rows(7))
        assert all(len(r[6]) == 6 for r in rows)


class TestScaled:
    def test_row_count_scaled(self):
        assert _spec().scaled(0.1).row_count == 10

    def test_fk_range_scaled(self):
        scaled = _spec().scaled(0.5)
        fk_gen = dict((name, gen) for name, _, gen in scaled.columns)["fk"]
        assert fk_gen.parent_rows == 5

    def test_nullable_fk_scaled(self):
        spec = TableSpec(
            "t",
            (("fk", ColumnType.INT, Nullable(ForeignKey(100), 0.1)),),
            row_count=10,
        )
        scaled = spec.scaled(0.2)
        gen = scaled.columns[0][2]
        assert gen.inner.parent_rows == 20

    def test_minimum_one_row(self):
        assert _spec().scaled(0.0001).row_count == 1


def test_populate_creates_loads_and_indexes():
    db = Database("x")
    spec = TableSpec(
        "t",
        (("id", ColumnType.INT, Serial()),),
        row_count=5,
        indexes=("id",),
    )
    populate(db, [spec], seed=1)
    assert db.row_count("t") == 5
    assert db.catalog.lookup("t").stats.row_count == 5
    assert db.catalog.lookup("t").has_index_on("id")
