"""Property-based tests for the engine's core invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import (
    Column,
    ColumnType,
    Database,
    Schema,
    parse_expression,
    rows_equal_unordered,
)
from repro.sqlengine.catalog import ColumnStats, TableStats
from repro.sqlengine.cost import StatsContext, estimate_selectivity

# ---------------------------------------------------------------------------
# Expression generation
# ---------------------------------------------------------------------------

_numbers = st.integers(min_value=0, max_value=999)
_columns = st.sampled_from(["t.a", "t.b"])


def _terms():
    return st.one_of(
        _numbers.map(lambda n: str(n)),
        _columns,
    )


@st.composite
def _predicates(draw, depth=2):
    if depth == 0:
        op = draw(st.sampled_from(["=", "<", ">", "<=", ">=", "!="]))
        left = draw(_terms())
        right = draw(_terms())
        return f"{left} {op} {right}"
    kind = draw(st.sampled_from(["leaf", "and", "or", "not"]))
    if kind == "leaf":
        return draw(_predicates(depth=0))
    if kind == "not":
        inner = draw(_predicates(depth=depth - 1))
        return f"NOT ({inner})"
    left = draw(_predicates(depth=depth - 1))
    right = draw(_predicates(depth=depth - 1))
    joiner = "AND" if kind == "and" else "OR"
    return f"({left}) {joiner} ({right})"


SCHEMA = Schema(
    (Column("a", ColumnType.INT, "t"), Column("b", ColumnType.INT, "t"))
)


class TestExpressionProperties:
    @given(_predicates())
    @settings(max_examples=80, deadline=None)
    def test_sql_rendering_is_fixed_point(self, text):
        expr = parse_expression(text)
        once = expr.sql()
        assert parse_expression(once).sql() == once

    @given(_predicates(), st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=80, deadline=None)
    def test_evaluation_is_boolean_or_null(self, text, a, b):
        expr = parse_expression(text)
        value = expr.compile(SCHEMA)((a, b))
        assert value in (True, False, None)

    @given(_predicates(), st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_not_negates(self, text, a, b):
        expr = parse_expression(text)
        negated = parse_expression(f"NOT ({text})")
        value = expr.compile(SCHEMA)((a, b))
        neg_value = negated.compile(SCHEMA)((a, b))
        if value is None:
            assert neg_value is None
        else:
            assert neg_value == (not value)


class TestSelectivityProperties:
    STATS = StatsContext(
        {
            "t": TableStats(
                row_count=1000,
                column_stats={
                    "a": ColumnStats(n_distinct=50, min_value=0, max_value=999),
                    "b": ColumnStats(n_distinct=10, min_value=0, max_value=999),
                },
            )
        }
    )

    @given(_predicates())
    @settings(max_examples=80, deadline=None)
    def test_selectivity_in_unit_interval(self, text):
        sel = estimate_selectivity(parse_expression(text), self.STATS)
        assert 0.0 < sel <= 1.0

    @given(_predicates(), _predicates())
    @settings(max_examples=50, deadline=None)
    def test_conjunction_never_increases_selectivity(self, left, right):
        combined = estimate_selectivity(
            parse_expression(f"({left}) AND ({right})"), self.STATS
        )
        alone = estimate_selectivity(parse_expression(left), self.STATS)
        assert combined <= alone + 1e-9


# ---------------------------------------------------------------------------
# Plan equivalence: every optimizer alternative computes the same result
# ---------------------------------------------------------------------------


@st.composite
def _join_queries(draw):
    predicate = draw(_predicates(depth=1))
    # Rebind t.* references onto the emp relation.
    predicate = predicate.replace("t.a", "e.deptno").replace("t.b", "e.salary")
    order = draw(st.sampled_from(["", " ORDER BY e.empno"]))
    limit = draw(st.sampled_from(["", " LIMIT 7"]))
    if limit and not order:
        order = " ORDER BY e.empno"  # keep LIMIT deterministic
    return (
        "SELECT e.empno, d.budget FROM emp e JOIN dept d "
        f"ON e.deptno = d.deptno WHERE {predicate}{order}{limit}"
    )


@pytest.fixture(scope="module")
def property_db(request):
    from repro.sqlengine import (
        ForeignKey,
        Serial,
        TableSpec,
        UniformInt,
        populate,
    )

    db = Database("prop")
    populate(
        db,
        [
            TableSpec(
                "dept",
                (
                    ("deptno", ColumnType.INT, Serial()),
                    ("budget", ColumnType.INT, UniformInt(10, 99)),
                ),
                row_count=12,
                indexes=("deptno",),
            ),
            TableSpec(
                "emp",
                (
                    ("empno", ColumnType.INT, Serial()),
                    ("deptno", ColumnType.INT, ForeignKey(12)),
                    ("salary", ColumnType.INT, UniformInt(0, 999)),
                ),
                row_count=120,
            ),
        ],
        seed=3,
    )
    return db


class TestPlanEquivalence:
    @given(_join_queries())
    @settings(max_examples=30, deadline=None)
    def test_all_alternatives_agree(self, property_db, sql):
        candidates = property_db.explain(sql)
        reference = property_db.run_plan(candidates[0].plan).rows
        for candidate in candidates[1:]:
            rows = property_db.run_plan(candidate.plan).rows
            if "ORDER BY" in sql and "LIMIT" not in sql:
                assert rows == reference
            else:
                assert rows_equal_unordered(rows, reference)

    @given(_join_queries())
    @settings(max_examples=30, deadline=None)
    def test_costs_positive_and_sorted(self, property_db, sql):
        candidates = property_db.explain(sql)
        totals = [c.cost.total for c in candidates]
        assert totals == sorted(totals)
        assert all(t > 0 for t in totals)
