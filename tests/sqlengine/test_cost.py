"""Unit tests for the cost model and selectivity estimation."""

import math

import pytest

from repro.sqlengine import PlanCost, ServerProfile, StatsContext, estimate_selectivity
from repro.sqlengine.catalog import ColumnStats, TableStats
from repro.sqlengine.cost import (
    DEFAULT_RANGE_SELECTIVITY,
    INFINITE_COST,
    equijoin_selectivity,
    pages_for,
)
from repro.sqlengine.parser import parse_expression


def _stats():
    return StatsContext(
        {
            "t": TableStats(
                row_count=100,
                column_stats={
                    "a": ColumnStats(n_distinct=10, min_value=0, max_value=100),
                    "s": ColumnStats(
                        n_distinct=4, min_value=None, max_value=None,
                        null_fraction=0.2,
                    ),
                },
            ),
            "u": TableStats(
                row_count=50,
                column_stats={
                    "b": ColumnStats(n_distinct=25, min_value=0, max_value=50),
                },
            ),
        }
    )


def sel(text):
    return estimate_selectivity(parse_expression(text), _stats())


class TestSelectivity:
    def test_none_predicate(self):
        assert estimate_selectivity(None, _stats()) == 1.0

    def test_equality_uses_ndv(self):
        assert sel("t.a = 5") == pytest.approx(0.1)

    def test_inequality_complement(self):
        assert sel("t.a != 5") == pytest.approx(0.9)

    def test_range_interpolation(self):
        assert sel("t.a > 75") == pytest.approx(0.25)
        assert sel("t.a < 25") == pytest.approx(0.25)
        assert sel("t.a >= 0") == pytest.approx(1.0)

    def test_range_flipped_orientation(self):
        # 25 < t.a  is  t.a > 25
        assert sel("25 < t.a") == pytest.approx(sel("t.a > 25"))

    def test_range_clamped(self):
        assert sel("t.a > 1000") == pytest.approx(1e-6)

    def test_and_multiplies(self):
        assert sel("t.a = 5 AND t.a = 7") == pytest.approx(0.01)

    def test_or_inclusion_exclusion(self):
        assert sel("t.a = 5 OR t.a = 7") == pytest.approx(0.19)

    def test_not_complements(self):
        assert sel("NOT t.a = 5") == pytest.approx(0.9)

    def test_is_null_uses_null_fraction(self):
        assert sel("t.s IS NULL") == pytest.approx(0.2)
        assert sel("t.s IS NOT NULL") == pytest.approx(0.8)

    def test_column_eq_column(self):
        assert sel("t.a = u.b") == pytest.approx(1 / 25)

    def test_unknown_column_defaults(self):
        assert 0 < sel("t.zzz > 5") <= 1.0

    def test_range_without_stats_defaults(self):
        assert sel("t.s > 'x'") == pytest.approx(DEFAULT_RANGE_SELECTIVITY)

    def test_result_clamped_to_unit_interval(self):
        assert 0 < sel("t.a = 5 AND t.a = 5 AND t.a = 5") <= 1.0


class TestEquijoinSelectivity:
    def test_uses_max_ndv(self):
        left = ColumnStats(n_distinct=10, min_value=0, max_value=9)
        right = ColumnStats(n_distinct=40, min_value=0, max_value=39)
        assert equijoin_selectivity(left, right) == pytest.approx(1 / 40)

    def test_missing_stats(self):
        assert equijoin_selectivity(None, None) == 1.0


class TestPlanCost:
    def test_next_tuple(self):
        cost = PlanCost(first_tuple=2.0, total=12.0, rows=11.0)
        assert cost.next_tuple == pytest.approx(1.0)

    def test_next_tuple_single_row(self):
        assert PlanCost(first_tuple=2.0, total=5.0, rows=1.0).next_tuple == 0.0

    def test_total_identity(self):
        # total = first_tuple + next_tuple * (rows - 1), the paper's
        # "first tuple cost + next tuple cost x cardinality" shape.
        cost = PlanCost(first_tuple=3.0, total=30.0, rows=10.0)
        assert cost.first_tuple + cost.next_tuple * (cost.rows - 1) == (
            pytest.approx(cost.total)
        )

    def test_scaled(self):
        cost = PlanCost(first_tuple=2.0, total=10.0, rows=5.0)
        scaled = cost.scaled(1.5)
        assert scaled.total == pytest.approx(15.0)
        assert scaled.first_tuple == pytest.approx(3.0)
        assert scaled.rows == 5.0  # cardinality untouched

    def test_infinite_cost(self):
        assert math.isinf(INFINITE_COST.total)
        assert math.isinf(INFINITE_COST.scaled(2.0).total)


class TestPagesFor:
    def test_zero_rows(self):
        assert pages_for(0, 100) == 0.0

    def test_minimum_one_page(self):
        assert pages_for(1, 8) == 1.0

    def test_scales_with_width(self):
        assert pages_for(1000, 200) > pages_for(1000, 50)


class TestServerProfile:
    def test_speeds_divide(self):
        fast = ServerProfile("fast", cpu_speed=2.0, io_speed=4.0)
        assert fast.cpu_ms(10.0) == 5.0
        assert fast.io_ms(10.0) == 2.5

    def test_reference_is_identity(self):
        ref = ServerProfile()
        assert ref.cpu_ms(7.0) == 7.0
