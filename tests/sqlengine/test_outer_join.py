"""Unit tests for LEFT OUTER JOIN."""

import pytest

from repro.sqlengine import (
    BindError,
    Column,
    ColumnType,
    Database,
    Schema,
    bind,
    parse,
    rows_equal_unordered,
)


@pytest.fixture()
def db():
    database = Database("outer")
    database.create_table(
        "dept",
        Schema(
            (Column("deptno", ColumnType.INT), Column("name", ColumnType.STR))
        ),
    )
    database.load_rows(
        "dept", [(1, "eng"), (2, "ops"), (3, "sales"), (4, "empty")]
    )
    database.create_table(
        "emp",
        Schema(
            (
                Column("empno", ColumnType.INT),
                Column("deptno", ColumnType.INT),
                Column("salary", ColumnType.INT),
            )
        ),
    )
    database.load_rows(
        "emp",
        [
            (10, 1, 100),
            (11, 1, 200),
            (12, 2, 150),
            (13, None, 50),
        ],
    )
    return database


class TestParsing:
    def test_left_join(self):
        stmt = parse("SELECT * FROM a LEFT JOIN b ON a.x = b.y")
        assert stmt.joins[0].outer

    def test_left_outer_join(self):
        stmt = parse("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y")
        assert stmt.joins[0].outer

    def test_inner_join_not_outer(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.y")
        assert not stmt.joins[0].outer

    def test_sql_round_trip(self):
        sql = "SELECT a.x FROM a LEFT JOIN b ON a.x = b.y WHERE a.x > 1"
        once = parse(sql).sql()
        assert parse(once).sql() == once
        assert "LEFT JOIN" in once


class TestBinding:
    def test_fixed_chain_created(self, db):
        block = bind(
            parse(
                "SELECT d.name FROM dept d LEFT JOIN emp e "
                "ON d.deptno = e.deptno"
            ),
            db.catalog,
        )
        assert len(block.fixed_joins) == 1
        assert block.fixed_joins[0].outer
        assert block.fixed_join_root == "d"
        assert block.join_edges == ()

    def test_no_predicate_pushdown_with_outer(self, db):
        block = bind(
            parse(
                "SELECT d.name FROM dept d LEFT JOIN emp e "
                "ON d.deptno = e.deptno WHERE d.deptno > 1"
            ),
            db.catalog,
        )
        assert all(r.predicate is None for r in block.relations.values())
        assert block.residual is not None

    def test_comma_tables_rejected(self, db):
        with pytest.raises(BindError, match="comma-separated"):
            bind(
                parse(
                    "SELECT d.name FROM dept d, dept x LEFT JOIN emp e "
                    "ON d.deptno = e.deptno"
                ),
                db.catalog,
            )


class TestExecution:
    def test_unmatched_left_rows_null_padded(self, db):
        result = db.run(
            "SELECT d.deptno, d.name, e.empno FROM dept d "
            "LEFT JOIN emp e ON d.deptno = e.deptno"
        )
        expected = [
            (1, "eng", 10),
            (1, "eng", 11),
            (2, "ops", 12),
            (3, "sales", None),
            (4, "empty", None),
        ]
        assert rows_equal_unordered(result.rows, expected)

    def test_matches_inner_join_plus_unmatched(self, db):
        outer = db.run(
            "SELECT d.deptno, e.empno FROM dept d "
            "LEFT JOIN emp e ON d.deptno = e.deptno"
        )
        inner = db.run(
            "SELECT d.deptno, e.empno FROM dept d "
            "JOIN emp e ON d.deptno = e.deptno"
        )
        outer_matched = [r for r in outer.rows if r[1] is not None]
        assert rows_equal_unordered(outer_matched, inner.rows)
        unmatched = [r for r in outer.rows if r[1] is None]
        assert {r[0] for r in unmatched} == {3, 4}

    def test_on_condition_filters_before_preserving(self, db):
        # ON e.salary > 150: only high earners match; every dept row
        # survives regardless.
        result = db.run(
            "SELECT d.deptno, e.empno FROM dept d "
            "LEFT JOIN emp e ON d.deptno = e.deptno AND e.salary > 150"
        )
        expected = [(1, 11), (2, None), (3, None), (4, None)]
        assert rows_equal_unordered(result.rows, expected)

    def test_where_filters_after_join(self, db):
        # WHERE e.empno IS NULL: the anti-join idiom.
        result = db.run(
            "SELECT d.deptno FROM dept d "
            "LEFT JOIN emp e ON d.deptno = e.deptno "
            "WHERE e.empno IS NULL"
        )
        assert rows_equal_unordered(result.rows, [(3,), (4,)])

    def test_null_join_keys_never_match(self, db):
        # emp 13 has deptno NULL: inner side, so it simply never matches.
        result = db.run(
            "SELECT COUNT(*) FROM dept d "
            "LEFT JOIN emp e ON d.deptno = e.deptno"
        )
        assert result.rows == [(5,)]

    def test_aggregation_over_outer_join(self, db):
        result = db.run(
            "SELECT d.name, COUNT(e.empno) AS n FROM dept d "
            "LEFT JOIN emp e ON d.deptno = e.deptno GROUP BY d.name"
        )
        assert rows_equal_unordered(
            result.rows,
            [("eng", 2), ("ops", 1), ("sales", 0), ("empty", 0)],
        )

    def test_chained_outer_joins(self, db):
        db.create_table(
            "loc", Schema((Column("deptno", ColumnType.INT),
                           Column("city", ColumnType.STR)))
        )
        db.load_rows("loc", [(1, "SJ"), (3, "NY")])
        result = db.run(
            "SELECT d.deptno, e.empno, l.city FROM dept d "
            "LEFT JOIN emp e ON d.deptno = e.deptno "
            "LEFT JOIN loc l ON d.deptno = l.deptno"
        )
        expected = [
            (1, 10, "SJ"),
            (1, 11, "SJ"),
            (2, 12, None),
            (3, None, "NY"),
            (4, None, None),
        ]
        assert rows_equal_unordered(result.rows, expected)

    def test_mixed_inner_then_outer(self, db):
        result = db.run(
            "SELECT d.deptno, e.empno FROM dept d "
            "JOIN emp e ON d.deptno = e.deptno "
            "LEFT JOIN dept x ON e.salary = x.deptno"
        )
        # inner join keeps depts 1,2; the outer to x never matches
        assert result.row_count == 3

    def test_plan_alternatives_agree(self, db):
        plans = db.explain(
            "SELECT d.deptno, e.empno FROM dept d "
            "LEFT JOIN emp e ON d.deptno = e.deptno"
        )
        assert len(plans) >= 2  # hash-profile and NLJ-profile
        reference = db.run_plan(plans[0].plan).rows
        for candidate in plans[1:]:
            assert rows_equal_unordered(
                db.run_plan(candidate.plan).rows, reference
            )

    def test_non_equi_on_uses_nested_loop(self, db):
        plans = db.explain(
            "SELECT d.deptno, e.empno FROM dept d "
            "LEFT JOIN emp e ON d.deptno < e.deptno"
        )
        assert "NestedLoopOuterJoin" in plans[0].plan.explain()


class TestFederatedOuterJoin:
    def test_outer_join_pushes_down_whole(self, sample_databases):
        from repro.harness import build_federation
        from repro.workload import TEST_SCALE

        deployment = build_federation(
            scale=TEST_SCALE, with_qcc=False,
            prebuilt_databases=sample_databases,
        )
        sql = (
            "SELECT c.nation, COUNT(o.orderkey) AS n FROM customer c "
            "LEFT JOIN orders o ON c.custkey = o.custkey "
            "GROUP BY c.nation"
        )
        result = deployment.integrator.submit(sql)
        direct = sample_databases["S1"].run(sql)
        assert rows_equal_unordered(result.rows, direct.rows)

    def test_outer_join_requires_colocation(self, sample_databases):
        from repro.fed import FederationError, NicknameRegistry, decompose

        registry = NicknameRegistry()
        db = sample_databases["S1"]
        registry.register("customer", "S1", table_def=db.catalog.lookup("customer"))
        registry.register("orders", "S2", table_def=db.catalog.lookup("orders"))
        with pytest.raises(FederationError):
            decompose(
                "SELECT c.nation FROM customer c LEFT JOIN orders o "
                "ON c.custkey = o.custkey",
                registry,
            )
