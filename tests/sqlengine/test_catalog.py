"""Unit tests for the catalog and statistics collection."""

import pytest

from repro.sqlengine import (
    Catalog,
    CatalogError,
    Column,
    ColumnType,
    Schema,
    TableDef,
    TableStats,
    collect_stats,
)
from repro.sqlengine.catalog import ColumnStats, IndexDef


def _schema():
    return Schema(
        (
            Column("id", ColumnType.INT),
            Column("name", ColumnType.STR),
            Column("score", ColumnType.FLOAT),
        )
    )


ROWS = [
    (1, "alpha", 1.0),
    (2, "beta", 2.0),
    (3, "beta", None),
    (4, None, 4.0),
]


class TestCollectStats:
    def test_row_count(self):
        assert collect_stats(_schema(), ROWS).row_count == 4

    def test_distinct_counts(self):
        stats = collect_stats(_schema(), ROWS)
        assert stats.for_column("id").n_distinct == 4
        assert stats.for_column("name").n_distinct == 2

    def test_min_max(self):
        stats = collect_stats(_schema(), ROWS)
        assert stats.for_column("score").min_value == 1.0
        assert stats.for_column("score").max_value == 4.0

    def test_null_fraction(self):
        stats = collect_stats(_schema(), ROWS)
        assert stats.for_column("score").null_fraction == pytest.approx(0.25)
        assert stats.for_column("id").null_fraction == 0.0

    def test_avg_str_len(self):
        stats = collect_stats(_schema(), ROWS)
        # alpha(5), beta(4), beta(4) -> 13/3
        assert stats.for_column("name").avg_str_len == pytest.approx(13 / 3)

    def test_empty_table(self):
        stats = collect_stats(_schema(), [])
        assert stats.row_count == 0
        assert stats.for_column("id").min_value is None
        assert stats.for_column("id").n_distinct == 1  # floor of 1

    def test_qualified_lookup(self):
        stats = collect_stats(_schema(), ROWS)
        assert stats.for_column("t.id") is stats.for_column("id")


class TestTableStatsScaled:
    def test_scaling(self):
        stats = collect_stats(_schema(), ROWS).scaled(0.5)
        assert stats.row_count == 2
        assert stats.for_column("id").n_distinct <= 2

    def test_scaling_floor(self):
        stats = collect_stats(_schema(), ROWS).scaled(0.0)
        assert stats.row_count == 1


class TestColumnStats:
    def test_value_range_numeric(self):
        cs = ColumnStats(n_distinct=5, min_value=2, max_value=12)
        assert cs.value_range() == 10.0

    def test_value_range_non_numeric(self):
        cs = ColumnStats(n_distinct=5, min_value="a", max_value="z")
        assert cs.value_range() is None


class TestCatalog:
    def _table(self, name="t"):
        return TableDef(name=name, schema=_schema(), stats=collect_stats(_schema(), ROWS))

    def test_register_and_lookup(self):
        catalog = Catalog()
        catalog.register(self._table())
        assert catalog.lookup("T").name == "t"  # case-insensitive
        assert catalog.has_table("t")

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.register(self._table())
        with pytest.raises(CatalogError):
            catalog.register(self._table())

    def test_unknown_lookup(self):
        with pytest.raises(CatalogError):
            Catalog().lookup("missing")

    def test_unregister(self):
        catalog = Catalog()
        catalog.register(self._table())
        catalog.unregister("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.unregister("t")

    def test_table_names_sorted(self):
        catalog = Catalog()
        catalog.register(self._table("zeta"))
        catalog.register(self._table("alpha"))
        assert catalog.table_names() == ["alpha", "zeta"]

    def test_stats_only_clone_is_independent(self):
        catalog = Catalog()
        catalog.register(self._table())
        clone = catalog.stats_only_clone()
        clone.update_stats("t", TableStats(row_count=999))
        assert catalog.lookup("t").stats.row_count == 4
        assert clone.lookup("t").stats.row_count == 999

    def test_has_index_on(self):
        table = self._table()
        table.indexes = (IndexDef("t", "id"),)
        assert table.has_index_on("id")
        assert table.has_index_on("t.id")
        assert not table.has_index_on("name")
