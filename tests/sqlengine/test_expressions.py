"""Unit tests for expression evaluation, including SQL NULL semantics."""

import pytest

from repro.sqlengine import (
    AggregateCall,
    And,
    Arithmetic,
    Column,
    ColumnRef,
    ColumnType,
    Comparison,
    ExpressionError,
    FuncCall,
    IsNull,
    Literal,
    Not,
    Or,
    Schema,
    parse_expression,
)
from repro.sqlengine.expressions import (
    combine_conjuncts,
    conjuncts,
    is_equijoin_conjunct,
    referenced_tables,
    walk,
)

SCHEMA = Schema(
    (
        Column("a", ColumnType.INT, "t"),
        Column("b", ColumnType.FLOAT, "t"),
        Column("s", ColumnType.STR, "t"),
    )
)
ROW = (4, 2.5, "Hi")
NULL_ROW = (None, None, None)


def ev(expr, row=ROW):
    return expr.compile(SCHEMA)(row)


class TestLiteralsAndColumns:
    def test_literal(self):
        assert ev(Literal(42)) == 42
        assert ev(Literal(None)) is None

    def test_column_ref(self):
        assert ev(ColumnRef("a")) == 4
        assert ev(ColumnRef("t.b")) == 2.5

    def test_column_ref_properties(self):
        ref = ColumnRef("t.b")
        assert ref.bare_name == "b"
        assert ref.table == "t"
        assert ColumnRef("b").table is None


class TestComparison:
    def test_basic_ops(self):
        assert ev(Comparison("=", ColumnRef("a"), Literal(4))) is True
        assert ev(Comparison("<", ColumnRef("a"), Literal(4))) is False
        assert ev(Comparison(">=", ColumnRef("b"), Literal(2.5))) is True
        assert ev(Comparison("<>", ColumnRef("a"), Literal(5))) is True

    def test_null_propagates(self):
        expr = Comparison("=", ColumnRef("a"), Literal(4))
        assert expr.compile(SCHEMA)(NULL_ROW) is None

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison("~", Literal(1), Literal(2))


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        t, f, n = Literal(True), Literal(False), Literal(None)
        assert ev(And(t, t)) is True
        assert ev(And(t, f)) is False
        assert ev(And(f, n)) is False  # False AND NULL = False
        assert ev(And(t, n)) is None
        assert ev(And(n, n)) is None

    def test_or_truth_table(self):
        t, f, n = Literal(True), Literal(False), Literal(None)
        assert ev(Or(f, f)) is False
        assert ev(Or(t, n)) is True  # True OR NULL = True
        assert ev(Or(f, n)) is None
        assert ev(Or(n, n)) is None

    def test_not(self):
        assert ev(Not(Literal(True))) is False
        assert ev(Not(Literal(None))) is None

    def test_is_null(self):
        assert ev(IsNull(ColumnRef("a")), NULL_ROW) is True
        assert ev(IsNull(ColumnRef("a"))) is False
        assert ev(IsNull(ColumnRef("a"), negated=True)) is True


class TestArithmetic:
    def test_basic(self):
        assert ev(Arithmetic("+", ColumnRef("a"), Literal(1))) == 5
        assert ev(Arithmetic("*", ColumnRef("b"), Literal(2))) == 5.0
        assert ev(Arithmetic("%", ColumnRef("a"), Literal(3))) == 1

    def test_division_by_zero_yields_null(self):
        assert ev(Arithmetic("/", Literal(1), Literal(0))) is None

    def test_null_propagates(self):
        assert ev(Arithmetic("+", Literal(None), Literal(1))) is None

    def test_result_type(self):
        assert (
            Arithmetic("/", ColumnRef("a"), Literal(2)).result_type(SCHEMA)
            is ColumnType.FLOAT
        )
        assert (
            Arithmetic("+", ColumnRef("a"), Literal(2)).result_type(SCHEMA)
            is ColumnType.INT
        )


class TestScalarFunctions:
    def test_functions(self):
        assert ev(FuncCall("UPPER", ColumnRef("s"))) == "HI"
        assert ev(FuncCall("LOWER", ColumnRef("s"))) == "hi"
        assert ev(FuncCall("LENGTH", ColumnRef("s"))) == 2
        assert ev(FuncCall("ABS", Literal(-3))) == 3

    def test_null_propagates(self):
        assert ev(FuncCall("UPPER", ColumnRef("s")), NULL_ROW) is None

    def test_unknown_function(self):
        with pytest.raises(ExpressionError):
            FuncCall("NOPE", Literal(1))


class TestAggregateCall:
    def test_cannot_compile(self):
        agg = AggregateCall("COUNT", None)
        with pytest.raises(ExpressionError):
            agg.compile(SCHEMA)

    def test_star_only_for_count(self):
        with pytest.raises(ExpressionError):
            AggregateCall("SUM", None)

    def test_sql_rendering(self):
        assert AggregateCall("COUNT", None).sql() == "COUNT(*)"
        assert (
            AggregateCall("SUM", ColumnRef("a"), distinct=True).sql()
            == "SUM(DISTINCT a)"
        )

    def test_result_types(self):
        assert AggregateCall("COUNT", None).result_type(SCHEMA) is ColumnType.INT
        assert (
            AggregateCall("AVG", ColumnRef("a")).result_type(SCHEMA)
            is ColumnType.FLOAT
        )
        assert (
            AggregateCall("MAX", ColumnRef("s")).result_type(SCHEMA)
            is ColumnType.STR
        )


class TestConjunctHelpers:
    def test_conjuncts_split_and_rebuild(self):
        expr = parse_expression("a > 1 AND b < 2 AND s = 'x'")
        parts = conjuncts(expr)
        assert len(parts) == 3
        rebuilt = combine_conjuncts(parts)
        assert rebuilt.sql() == expr.sql()

    def test_conjuncts_of_none(self):
        assert conjuncts(None) == ()
        assert combine_conjuncts([]) is None

    def test_or_is_single_conjunct(self):
        expr = parse_expression("a > 1 OR b < 2")
        assert len(conjuncts(expr)) == 1

    def test_is_equijoin_conjunct(self):
        assert is_equijoin_conjunct(parse_expression("t.a = u.b"))
        assert not is_equijoin_conjunct(parse_expression("t.a = t.b"))
        assert not is_equijoin_conjunct(parse_expression("t.a = 5"))
        assert not is_equijoin_conjunct(parse_expression("t.a < u.b"))

    def test_referenced_tables(self):
        expr = parse_expression("t.a = u.b AND t.a > 1")
        assert referenced_tables(expr) == frozenset({"t", "u"})


def test_walk_visits_all_nodes():
    expr = parse_expression("(a + 1) * 2 > b AND NOT s = 'x'")
    kinds = [type(node).__name__ for node in walk(expr)]
    assert "And" in kinds
    assert "Arithmetic" in kinds
    assert "Not" in kinds
    assert kinds[0] == "And"  # root first (pre-order)


def test_sql_round_trip_through_parser():
    source = "((t.a + 1) > 2 AND s = 'it''s') OR b IS NOT NULL"
    expr = parse_expression(source)
    reparsed = parse_expression(expr.sql())
    assert reparsed.sql() == expr.sql()
