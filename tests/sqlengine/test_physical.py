"""Unit tests for physical operators: correctness against brute force."""

import pytest

from repro.sqlengine import (
    Column,
    ColumnType,
    ExecutionError,
    MaterializedInput,
    Schema,
    rows_equal_unordered,
)
from repro.sqlengine.executor import execute_plan
from repro.sqlengine.physical import (
    Filter,
    HashJoin,
    IndexScan,
    Limit,
    NestedLoopJoin,
    SeqScan,
    WorkMeter,
)
from repro.sqlengine.parser import parse_expression
from repro.sqlengine.expressions import ColumnRef, Literal


@pytest.fixture()
def data(tiny_db):
    emp = list(tiny_db.storage.table("emp").scan())
    dept = list(tiny_db.storage.table("dept").scan())
    return tiny_db, emp, dept


def run(db, plan):
    return execute_plan(plan, db.storage, db.params)


class TestSeqScan:
    def test_full_scan(self, data):
        db, emp, _ = data
        plan = SeqScan(db.catalog.lookup("emp"), "emp")
        assert run(db, plan).rows == emp

    def test_predicate(self, data):
        db, emp, _ = data
        plan = SeqScan(
            db.catalog.lookup("emp"), "emp",
            parse_expression("emp.salary > 5000"),
        )
        expected = [r for r in emp if r[2] > 5000]
        assert run(db, plan).rows == expected

    def test_meters_work(self, data):
        db, _, _ = data
        result = run(db, SeqScan(db.catalog.lookup("emp"), "emp"))
        assert result.meter.cpu_ms > 0
        assert result.meter.io_ms > 0


class TestIndexScan:
    def test_probe(self, data):
        db, _, dept = data
        plan = IndexScan(
            db.catalog.lookup("dept"), "dept", "deptno", Literal(7)
        )
        assert run(db, plan).rows == [r for r in dept if r[0] == 7]

    def test_probe_with_residual(self, data):
        db, _, dept = data
        plan = IndexScan(
            db.catalog.lookup("dept"), "dept", "deptno", Literal(7),
            residual=parse_expression("dept.budget > 1000"),
        )
        assert run(db, plan).rows == []

    def test_missing_index_fails(self, data):
        db, _, _ = data
        plan = IndexScan(
            db.catalog.lookup("emp"), "emp", "empno", Literal(1)
        )
        with pytest.raises(ExecutionError, match="no index"):
            run(db, plan)

    def test_non_literal_probe_rejected(self, data):
        db, _, _ = data
        with pytest.raises(ExecutionError):
            IndexScan(
                db.catalog.lookup("dept"), "dept", "deptno",
                ColumnRef("dept.budget"),
            )


class TestJoins:
    def _expected_join(self, emp, dept):
        return [e + d for e in emp for d in dept if e[1] == d[0]]

    def test_hash_join_matches_brute_force(self, data):
        db, emp, dept = data
        plan = HashJoin(
            SeqScan(db.catalog.lookup("emp"), "emp"),
            SeqScan(db.catalog.lookup("dept"), "dept"),
            ["emp.deptno"],
            ["dept.deptno"],
        )
        assert rows_equal_unordered(
            run(db, plan).rows, self._expected_join(emp, dept)
        )

    def test_nested_loop_equals_hash_join(self, data):
        db, emp, dept = data
        nl = NestedLoopJoin(
            SeqScan(db.catalog.lookup("emp"), "emp"),
            SeqScan(db.catalog.lookup("dept"), "dept"),
            parse_expression("emp.deptno = dept.deptno"),
        )
        assert rows_equal_unordered(
            run(db, nl).rows, self._expected_join(emp, dept)
        )

    def test_cross_join(self, data):
        db, emp, dept = data
        plan = NestedLoopJoin(
            SeqScan(db.catalog.lookup("dept"), "dept"),
            SeqScan(db.catalog.lookup("dept"), "d2"),
            None,
        )
        assert run(db, plan).row_count == len(dept) ** 2

    def test_hash_join_null_keys_dropped(self, data):
        db, _, _ = data
        schema = Schema((Column("k", ColumnType.INT, "l"),))
        left = MaterializedInput("l", schema, [(1,), (None,)])
        right = MaterializedInput(
            "r", Schema((Column("k", ColumnType.INT, "r"),)), [(1,), (None,)]
        )
        plan = HashJoin(left, right, ["l.k"], ["r.k"])
        assert run(db, plan).rows == [(1, 1)]

    def test_hash_join_key_mismatch_rejected(self, data):
        db, _, _ = data
        with pytest.raises(ExecutionError):
            HashJoin(
                SeqScan(db.catalog.lookup("emp"), "emp"),
                SeqScan(db.catalog.lookup("dept"), "dept"),
                [],
                [],
            )


class TestAggregation:
    def test_group_by_counts(self, tiny_db):
        emp = list(tiny_db.storage.table("emp").scan())
        result = tiny_db.run(
            "SELECT deptno, COUNT(*) AS n FROM emp GROUP BY deptno"
        )
        expected = {}
        for row in emp:
            expected[row[1]] = expected.get(row[1], 0) + 1
        assert dict((r[0], r[1]) for r in result.rows) == expected

    def test_sum_avg_min_max(self, tiny_db):
        emp = list(tiny_db.storage.table("emp").scan())
        result = tiny_db.run(
            "SELECT SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp"
        )
        salaries = [r[2] for r in emp]
        row = result.rows[0]
        assert row[0] == pytest.approx(sum(salaries))
        assert row[1] == pytest.approx(sum(salaries) / len(salaries))
        assert row[2] == min(salaries)
        assert row[3] == max(salaries)

    def test_count_distinct(self, tiny_db):
        emp = list(tiny_db.storage.table("emp").scan())
        result = tiny_db.run("SELECT COUNT(DISTINCT deptno) FROM emp")
        assert result.rows[0][0] == len({r[1] for r in emp})

    def test_global_aggregate_over_empty_input(self, tiny_db):
        result = tiny_db.run("SELECT COUNT(*) FROM emp WHERE salary > 1000000")
        assert result.rows == [(0,)]

    def test_group_by_over_empty_input_yields_no_groups(self, tiny_db):
        result = tiny_db.run(
            "SELECT deptno, COUNT(*) FROM emp WHERE salary > 1000000 "
            "GROUP BY deptno"
        )
        assert result.rows == []

    def test_having_filters_groups(self, tiny_db):
        with_having = tiny_db.run(
            "SELECT deptno, COUNT(*) AS n FROM emp GROUP BY deptno "
            "HAVING COUNT(*) > 15"
        )
        without = tiny_db.run(
            "SELECT deptno, COUNT(*) AS n FROM emp GROUP BY deptno"
        )
        expected = [r for r in without.rows if r[1] > 15]
        assert rows_equal_unordered(with_having.rows, expected)

    def test_expression_over_aggregates(self, tiny_db):
        result = tiny_db.run(
            "SELECT SUM(salary) / COUNT(*) AS manual_avg, AVG(salary) AS avg "
            "FROM emp"
        )
        manual, avg = result.rows[0]
        assert manual == pytest.approx(avg)

    def test_aggregate_ignores_nulls(self, tiny_db):
        tiny_db.storage.table("emp").insert((9999, 1, None))
        result = tiny_db.run("SELECT COUNT(salary), COUNT(*) FROM emp")
        count_col, count_star = result.rows[0]
        assert count_star == count_col + 1


class TestSortLimitDistinct:
    def test_sort_multi_key(self, tiny_db):
        result = tiny_db.run(
            "SELECT deptno, salary FROM emp ORDER BY deptno ASC, salary DESC"
        )
        rows = result.rows
        assert rows == sorted(rows, key=lambda r: (r[0], -r[1]))

    def test_sort_nulls_last(self, tiny_db):
        tiny_db.storage.table("emp").insert((9999, 1, None))
        result = tiny_db.run("SELECT salary FROM emp ORDER BY salary ASC")
        assert result.rows[-1] == (None,)

    def test_limit(self, tiny_db):
        result = tiny_db.run("SELECT empno FROM emp ORDER BY empno LIMIT 5")
        assert result.rows == [(i,) for i in range(1, 6)]

    def test_limit_zero(self, tiny_db):
        assert tiny_db.run("SELECT empno FROM emp LIMIT 0").rows == []

    def test_limit_exceeding_rows(self, tiny_db):
        result = tiny_db.run("SELECT deptno FROM dept LIMIT 1000")
        assert result.row_count == 20

    def test_negative_limit_rejected(self, tiny_db):
        plan = SeqScan(tiny_db.catalog.lookup("dept"), "dept")
        with pytest.raises(ExecutionError):
            Limit(plan, -1)

    def test_distinct(self, tiny_db):
        result = tiny_db.run("SELECT DISTINCT deptno FROM emp")
        emp = list(tiny_db.storage.table("emp").scan())
        assert sorted(r[0] for r in result.rows) == sorted({r[1] for r in emp})


class TestPlanMetadata:
    def test_signature_stable_and_distinct(self, tiny_db):
        scan_a = SeqScan(tiny_db.catalog.lookup("emp"), "emp")
        scan_b = SeqScan(tiny_db.catalog.lookup("emp"), "emp")
        scan_c = SeqScan(
            tiny_db.catalog.lookup("emp"), "emp",
            parse_expression("emp.salary > 1"),
        )
        assert scan_a.signature() == scan_b.signature()
        assert scan_a.signature() != scan_c.signature()

    def test_base_tables(self, tiny_db):
        plan = HashJoin(
            SeqScan(tiny_db.catalog.lookup("emp"), "e"),
            SeqScan(tiny_db.catalog.lookup("dept"), "d"),
            ["e.deptno"],
            ["d.deptno"],
        )
        assert plan.base_tables() == ("dept", "emp")

    def test_explain_is_indented_tree(self, tiny_db):
        plan = Filter(
            SeqScan(tiny_db.catalog.lookup("emp"), "emp"),
            parse_expression("emp.salary > 1"),
        )
        lines = plan.explain().splitlines()
        assert lines[0].startswith("Filter")
        assert lines[1].startswith("  SeqScan")


class TestWorkMeter:
    def test_merge(self):
        a = WorkMeter()
        a.cpu_ms = 1.0
        a.io_ms = 2.0
        a.tuples_out = 3
        b = WorkMeter()
        b.cpu_ms = 0.5
        b.merge(a)
        assert b.cpu_ms == 1.5
        assert b.io_ms == 2.0
        assert b.tuples_out == 3
        assert b.total_ms == 3.5
