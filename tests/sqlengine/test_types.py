"""Unit tests for value and schema types."""

import pytest

from repro.sqlengine import (
    Column,
    ColumnType,
    Schema,
    SchemaError,
    TypeMismatchError,
    rows_equal_unordered,
)


class TestColumnType:
    def test_int_accepts_int_only(self):
        assert ColumnType.INT.accepts(5)
        assert not ColumnType.INT.accepts(5.0)
        assert not ColumnType.INT.accepts(True)
        assert not ColumnType.INT.accepts("5")

    def test_float_widens_int(self):
        assert ColumnType.FLOAT.accepts(5)
        assert ColumnType.FLOAT.coerce(5) == 5.0
        assert isinstance(ColumnType.FLOAT.coerce(5), float)

    def test_bool_is_not_int(self):
        assert ColumnType.BOOL.accepts(True)
        assert not ColumnType.BOOL.accepts(1)
        assert not ColumnType.FLOAT.accepts(True)

    def test_null_is_universal(self):
        for ctype in ColumnType:
            assert ctype.accepts(None)
            assert ctype.coerce(None) is None

    def test_coerce_rejects_mismatch(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.INT.coerce("x")
        with pytest.raises(TypeMismatchError):
            ColumnType.STR.coerce(1)


def _schema():
    return Schema(
        (
            Column("id", ColumnType.INT, "t"),
            Column("name", ColumnType.STR, "t"),
            Column("id", ColumnType.INT, "u"),
        )
    )


class TestSchema:
    def test_qualified_resolution(self):
        schema = _schema()
        assert schema.index_of("t.id") == 0
        assert schema.index_of("u.id") == 2

    def test_bare_resolution_unique(self):
        assert _schema().index_of("name") == 1

    def test_bare_resolution_ambiguous(self):
        with pytest.raises(SchemaError, match="ambiguous"):
            _schema().index_of("id")

    def test_unknown_column(self):
        with pytest.raises(SchemaError, match="unknown"):
            _schema().index_of("missing")
        with pytest.raises(SchemaError):
            _schema().index_of("x.name")

    def test_stale_qualifier_falls_back(self):
        # A qualified name whose table prefix is gone resolves if the
        # bare trailing component is unique.
        schema = Schema((Column("name", ColumnType.STR),))
        assert schema.index_of("t.name") == 0

    def test_concat_and_rename(self):
        left = Schema((Column("a", ColumnType.INT, "l"),))
        right = Schema((Column("b", ColumnType.INT, "r"),))
        joined = left.concat(right)
        assert [c.qualified_name for c in joined] == ["l.a", "r.b"]
        renamed = joined.rename_table("x")
        assert [c.qualified_name for c in renamed] == ["x.a", "x.b"]

    def test_validate_row(self):
        schema = Schema(
            (Column("a", ColumnType.INT), Column("b", ColumnType.FLOAT))
        )
        assert schema.validate_row([1, 2]) == (1, 2.0)
        with pytest.raises(SchemaError):
            schema.validate_row([1])
        with pytest.raises(TypeMismatchError):
            schema.validate_row(["x", 2.0])

    def test_row_width_accounts_for_strings(self):
        ints = Schema((Column("a", ColumnType.INT),))
        strs = Schema((Column("a", ColumnType.STR),))
        assert strs.row_width_bytes() > ints.row_width_bytes()

    def test_has_column(self):
        schema = _schema()
        assert schema.has_column("name")
        assert not schema.has_column("id")  # ambiguous -> False
        assert schema.has_column("t.id")

    def test_equality(self):
        assert _schema() == _schema()
        assert _schema() != Schema(())


def test_rows_equal_unordered():
    assert rows_equal_unordered([(1, "a"), (2, "b")], [(2, "b"), (1, "a")])
    assert not rows_equal_unordered([(1,)], [(1,), (1,)])
    # None values sort without TypeError
    assert rows_equal_unordered([(None,), (1,)], [(1,), (None,)])
