"""Unit tests for plan enumeration and selection."""

import math


from repro.sqlengine import (
    OptimizerConfig,
    rows_equal_unordered,
)
from repro.sqlengine.physical import HashJoin, IndexScan, NestedLoopJoin, SeqScan


def _plans(db, sql, **kwargs):
    config = OptimizerConfig(**kwargs) if kwargs else None
    if config is None:
        return db.explain(sql)
    from repro.sqlengine.optimizer import plan_sql as plan

    return plan(sql, db.catalog, db.profile, config)


JOIN_SQL = (
    "SELECT e.empno, d.budget FROM emp e JOIN dept d "
    "ON e.deptno = d.deptno WHERE e.salary > 4000"
)


class TestAlternatives:
    def test_sorted_by_total_cost(self, tiny_db):
        plans = tiny_db.explain(JOIN_SQL)
        totals = [c.cost.total for c in plans]
        assert totals == sorted(totals)

    def test_at_most_k_returned(self, tiny_db):
        plans = tiny_db.explain(JOIN_SQL)
        assert 1 <= len(plans) <= 3

    def test_alternatives_have_distinct_signatures(self, tiny_db):
        plans = tiny_db.explain(JOIN_SQL)
        signatures = [c.plan.signature() for c in plans]
        assert len(signatures) == len(set(signatures))

    def test_all_alternatives_produce_same_result(self, tiny_db):
        plans = tiny_db.explain(JOIN_SQL)
        results = [tiny_db.run_plan(c.plan).rows for c in plans]
        for other in results[1:]:
            assert rows_equal_unordered(results[0], other)

    def test_estimates_finite_positive(self, tiny_db):
        for candidate in tiny_db.explain(JOIN_SQL):
            assert math.isfinite(candidate.cost.total)
            assert candidate.cost.total > 0
            assert candidate.cost.first_tuple <= candidate.cost.total
            assert candidate.cost.rows >= 0


class TestAccessPathChoice:
    def test_index_scan_chosen_for_equality_on_indexed_column(self, tiny_db):
        best = tiny_db.explain("SELECT * FROM dept WHERE deptno = 3")[0]
        assert isinstance(best.plan.children()[0], IndexScan)

    def test_seq_scan_for_unindexed_column(self, tiny_db):
        best = tiny_db.explain("SELECT * FROM dept WHERE budget = 50")[0]
        assert isinstance(best.plan.children()[0], SeqScan)

    def test_index_scan_disabled_by_config(self, tiny_db):
        from repro.sqlengine.optimizer import Optimizer
        from repro.sqlengine.logical import bind
        from repro.sqlengine.parser import parse

        config = OptimizerConfig(enable_index_scan=False)
        block = bind(parse("SELECT * FROM dept WHERE deptno = 3"), tiny_db.catalog)
        plans = Optimizer(tiny_db.profile, config).optimize(block)
        for candidate in plans:
            assert not any(
                isinstance(node, IndexScan)
                for node in _walk_plans(candidate.plan)
            )


def _walk_plans(plan):
    yield plan
    for child in plan.children():
        yield from _walk_plans(child)


class TestJoinPlanning:
    def test_hash_join_preferred_for_large_equijoin(self, tiny_db):
        best = tiny_db.explain(JOIN_SQL)[0]
        assert any(isinstance(n, HashJoin) for n in _walk_plans(best.plan))

    def test_nested_loop_offered_as_alternative(self, tiny_db):
        plans = tiny_db.explain(JOIN_SQL)
        assert any(
            any(isinstance(n, NestedLoopJoin) for n in _walk_plans(c.plan))
            for c in plans
        )

    def test_cross_join_when_disconnected(self, tiny_db):
        plans = tiny_db.explain("SELECT e.empno, d.deptno FROM emp e, dept d LIMIT 5")
        assert any(
            isinstance(n, NestedLoopJoin) for n in _walk_plans(plans[0].plan)
        )

    def test_three_way_join(self, sample_databases):
        db = sample_databases["S1"]
        plans = db.explain(
            "SELECT o.priority, COUNT(*) FROM orders o "
            "JOIN lineitem l ON o.orderkey = l.orderkey "
            "JOIN product p ON l.prodkey = p.prodkey "
            "WHERE p.price > 400 GROUP BY o.priority"
        )
        assert plans
        result = db.run_plan(plans[0].plan)
        assert result.meter.total_ms > 0


class TestCostSanity:
    def test_selective_predicate_cheaper_than_full_scan(self, sample_databases):
        db = sample_databases["S1"]
        full = db.explain("SELECT COUNT(*) FROM orders")[0].cost.total
        selective = db.explain(
            "SELECT COUNT(*) FROM orders WHERE totalprice > 9990"
        )[0].cost.total
        # Same scan work, but far fewer aggregate updates estimated.
        assert selective <= full

    def test_larger_table_costs_more(self, sample_databases):
        db = sample_databases["S1"]
        small = db.explain("SELECT COUNT(*) FROM customer")[0].cost.total
        large = db.explain("SELECT COUNT(*) FROM orders")[0].cost.total
        assert large > small

    def test_faster_profile_estimates_lower(self, sample_databases):
        s1 = sample_databases["S1"]
        s3 = sample_databases["S3"]
        sql = "SELECT COUNT(*) FROM orders WHERE totalprice > 5000"
        assert s3.explain(sql)[0].cost.total < s1.explain(sql)[0].cost.total
