"""Unit tests for INSERT / UPDATE / DELETE."""

import pytest

from repro.sqlengine import (
    DeleteStatement,
    DmlError,
    InsertStatement,
    ParseError,
    SelectStatement,
    UpdateStatement,
    parse_statement,
)


class TestDmlParsing:
    def test_insert_positional(self):
        statement = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(statement, InsertStatement)
        assert statement.table == "t"
        assert statement.columns == ()
        assert len(statement.rows) == 2

    def test_insert_with_columns(self):
        statement = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert statement.columns == ("a", "b")

    def test_update(self):
        statement = parse_statement(
            "UPDATE t SET a = a + 1, b = 'x' WHERE a > 5"
        )
        assert isinstance(statement, UpdateStatement)
        assert [a.column for a in statement.assignments] == ["a", "b"]
        assert statement.where is not None

    def test_update_without_where(self):
        statement = parse_statement("UPDATE t SET a = 0")
        assert statement.where is None

    def test_delete(self):
        statement = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(statement, DeleteStatement)
        assert statement.where is not None

    def test_select_dispatch(self):
        statement = parse_statement("SELECT * FROM t")
        assert isinstance(statement, SelectStatement)

    def test_garbage(self):
        with pytest.raises(ParseError):
            parse_statement("DROP TABLE t")

    def test_sql_round_trip(self):
        for sql in (
            "INSERT INTO t (a, b) VALUES (1, 'x')",
            "UPDATE t SET a = (a + 1) WHERE a > 5",
            "DELETE FROM t WHERE a = 1",
        ):
            once = parse_statement(sql).sql()
            assert parse_statement(once).sql() == once


class TestInsertExecution:
    def test_positional_insert(self, tiny_db):
        before = tiny_db.row_count("dept")
        result = tiny_db.run_dml("INSERT INTO dept VALUES (100, 42)")
        assert result.rows_affected == 1
        assert tiny_db.row_count("dept") == before + 1
        assert tiny_db.run("SELECT budget FROM dept WHERE deptno = 100").rows == [
            (42,)
        ]

    def test_column_list_fills_nulls(self, tiny_db):
        tiny_db.run_dml("INSERT INTO dept (deptno) VALUES (101)")
        rows = tiny_db.run("SELECT * FROM dept WHERE deptno = 101").rows
        assert rows == [(101, None)]

    def test_multi_row(self, tiny_db):
        result = tiny_db.run_dml(
            "INSERT INTO dept VALUES (102, 1), (103, 2), (104, 3)"
        )
        assert result.rows_affected == 3

    def test_arity_mismatch(self, tiny_db):
        with pytest.raises(DmlError):
            tiny_db.run_dml("INSERT INTO dept VALUES (1)")

    def test_non_constant_rejected(self, tiny_db):
        with pytest.raises(DmlError):
            tiny_db.run_dml("INSERT INTO dept VALUES (deptno, 1)")

    def test_insert_maintains_index(self, tiny_db):
        tiny_db.run_dml("INSERT INTO dept VALUES (200, 5)")
        rows = tiny_db.run("SELECT * FROM dept WHERE deptno = 200").rows
        assert rows == [(200, 5)]

    def test_work_metered(self, tiny_db):
        result = tiny_db.run_dml("INSERT INTO dept VALUES (300, 5)")
        assert result.meter.total_ms > 0


class TestUpdateExecution:
    def test_update_with_predicate(self, tiny_db):
        result = tiny_db.run_dml(
            "UPDATE dept SET budget = budget + 100 WHERE deptno <= 5"
        )
        assert result.rows_affected == 5
        rows = tiny_db.run(
            "SELECT budget FROM dept WHERE deptno <= 5"
        ).rows
        assert all(budget > 100 for (budget,) in rows)

    def test_update_all_rows(self, tiny_db):
        result = tiny_db.run_dml("UPDATE dept SET budget = 0")
        assert result.rows_affected == 20
        assert tiny_db.run("SELECT SUM(budget) FROM dept").rows == [(0,)]

    def test_update_expression_uses_old_values(self, tiny_db):
        before = tiny_db.run("SELECT budget FROM dept WHERE deptno = 3").rows
        tiny_db.run_dml("UPDATE dept SET budget = budget * 2 WHERE deptno = 3")
        after = tiny_db.run("SELECT budget FROM dept WHERE deptno = 3").rows
        assert after[0][0] == before[0][0] * 2

    def test_update_rebuilds_index(self, tiny_db):
        tiny_db.run_dml("UPDATE dept SET deptno = 999 WHERE deptno = 7")
        assert tiny_db.run("SELECT * FROM dept WHERE deptno = 7").rows == []
        assert len(tiny_db.run("SELECT * FROM dept WHERE deptno = 999").rows) == 1

    def test_update_cost_scales_with_changes(self, tiny_db):
        small = tiny_db.run_dml(
            "UPDATE emp SET salary = salary WHERE empno = 1"
        )
        large = tiny_db.run_dml("UPDATE emp SET salary = salary + 0")
        assert large.meter.total_ms > small.meter.total_ms


class TestDeleteExecution:
    def test_delete_with_predicate(self, tiny_db):
        result = tiny_db.run_dml("DELETE FROM dept WHERE deptno > 15")
        assert result.rows_affected == 5
        assert tiny_db.row_count("dept") == 15

    def test_delete_all(self, tiny_db):
        result = tiny_db.run_dml("DELETE FROM dept")
        assert result.rows_affected == 20
        assert tiny_db.row_count("dept") == 0

    def test_delete_rebuilds_index(self, tiny_db):
        tiny_db.run_dml("DELETE FROM dept WHERE deptno = 7")
        assert tiny_db.run("SELECT * FROM dept WHERE deptno = 7").rows == []

    def test_stats_stay_stale_until_analyze(self, tiny_db):
        tiny_db.run_dml("DELETE FROM dept WHERE deptno > 10")
        assert tiny_db.catalog.lookup("dept").stats.row_count == 20
        tiny_db.analyze("dept")
        assert tiny_db.catalog.lookup("dept").stats.row_count == 10


class TestRunDmlDispatch:
    def test_select_rejected(self, tiny_db):
        with pytest.raises(DmlError):
            tiny_db.run_dml("SELECT * FROM dept")
