"""Unit tests for the columnar engine's storage and operator fast paths.

Covers the typed column representations (validity bitmaps, dictionary
encoding), the selection-vector contract (filters narrow, never copy),
the pinned LIMIT meter exception, the operator fast paths (unique-build
hash join, COUNT(*)-only grouping, single-column DISTINCT), and the
observability surface (per-operator selectivity in EXPLAIN ANALYZE,
engine metrics).
"""

from __future__ import annotations

from array import array

import pytest

import repro.obs as obs
from repro.obs.profile import profiling, render_analyzed_plan
from repro.sqlengine import (
    Column,
    ColumnBatch,
    ColumnType,
    Database,
    DictColumn,
    FloatColumn,
    IntColumn,
    Schema,
    ValueColumn,
    execute_plan,
)
from repro.sqlengine.columnar import NULL_CODE

ENGINES = ("row", "vector", "columnar")


def meter_tuple(result):
    meter = result.meter
    return (meter.cpu_ms, meter.io_ms, meter.tuples_out)


def run_engines(database, sql, batch_size=4):
    plan = database.explain(sql)[0].plan
    return plan, {
        engine: execute_plan(
            plan,
            database.storage,
            database.params,
            engine=engine,
            batch_size=batch_size,
        )
        for engine in ENGINES
    }


def assert_all_equivalent(database, sql, batch_size=4):
    _plan, results = run_engines(database, sql, batch_size)
    reference = results["vector"]
    for engine in ENGINES:
        assert results[engine].rows == reference.rows, (sql, engine)
        assert meter_tuple(results[engine]) == meter_tuple(reference), (
            sql,
            engine,
        )
    return results


# -- typed columns ----------------------------------------------------------


class TestColumnData:
    def test_int_column_dense(self):
        col = IntColumn(array("q", [3, 1, 4]))
        assert col.values() == [3, 1, 4]
        assert not col.has_nulls()

    def test_int_column_validity(self):
        col = IntColumn(array("q", [3, 0, 4]), bytearray([1, 0, 1]))
        assert col.values() == [3, None, 4]
        assert col.has_nulls()

    def test_float_column_validity(self):
        col = FloatColumn(array("d", [1.5, 0.0]), bytearray([1, 0]))
        assert col.values() == [1.5, None]

    def test_dict_column_decode_and_view(self):
        dictionary = ["lo", "hi"]
        encode = {"lo": 0, "hi": 1}
        col = DictColumn(
            array("q", [1, NULL_CODE, 0, 1]), dictionary, encode, True
        )
        assert col.values() == ["hi", None, "lo", "hi"]
        codes, d, enc = col.dict_view()
        assert codes == [1, NULL_CODE, 0, 1]
        assert d is dictionary and enc is encode

    def test_value_column_lazy_nullability(self):
        assert ValueColumn([1, None]).has_nulls()
        assert not ValueColumn([1, 2]).has_nulls()
        assert not ValueColumn([1, None], nullable=False).has_nulls()

    def test_typed_storage_is_compact(self):
        from sys import getsizeof

        raw = list(range(1024))
        typed = IntColumn(array("q", raw))
        # A boxed row representation pays the list of pointers plus one
        # Python int object per value; the typed array pays 8 bytes per
        # value.
        boxed_bytes = getsizeof(raw) + sum(getsizeof(v) for v in raw)
        assert typed.storage_bytes() < boxed_bytes / 3

    def test_table_storage_dictionary_encodes_strings(self):
        database = Database("cols")
        database.create_table(
            "t",
            Schema(
                [Column("x", ColumnType.INT), Column("s", ColumnType.STR)]
            ),
        )
        database.load_rows("t", [(1, "a"), (2, None), (3, "a")])
        columns = database.storage.table("t").columnar()
        assert isinstance(columns.cols[0], IntColumn)
        assert isinstance(columns.cols[1], DictColumn)
        assert columns.cols[1].values() == ["a", None, "a"]


# -- selection vectors ------------------------------------------------------


class TestSelectionVectors:
    def batch(self):
        return ColumnBatch(
            (
                IntColumn(array("q", [10, 11, 12, 13])),
                ValueColumn(["a", "b", "c", "d"]),
            ),
            4,
            None,
        )

    def test_with_sel_shares_columns(self):
        batch = self.batch()
        narrowed = batch.with_sel([1, 3])
        assert narrowed.cols is batch.cols  # no copy, only the selection
        assert len(narrowed) == 2
        assert narrowed.n_rows == 4
        assert narrowed.materialize() == [(11, "b"), (13, "d")]

    def test_first_n_narrows_selection(self):
        batch = self.batch().with_sel([0, 2, 3])
        assert batch.first_n(2).materialize() == [(10, "a"), (12, "c")]

    def test_column_values_respect_selection(self):
        batch = self.batch().with_sel([2])
        assert batch.column_values(1) == ["c"]

    def test_empty_batch(self):
        empty = ColumnBatch((), 3, None)
        assert empty.materialize() == [(), (), ()]


# -- the pinned LIMIT meter exception ---------------------------------------


class TestLimitMeters:
    @pytest.fixture()
    def tiny_db(self):
        database = Database("limit")
        database.create_table(
            "t", Schema([Column("x", ColumnType.INT)])
        )
        database.load_rows("t", [(i,) for i in range(10)])
        database.analyze()
        return database

    def test_limit_scans_to_batch_boundary(self, tiny_db):
        # 10-row table, batch_size=4, LIMIT 6: the row engine stops
        # after metering exactly 6 rows; the batch engines finish the
        # second batch and meter 8.  This is the one documented meter
        # divergence (docs/execution.md).
        _plan, full = run_engines(tiny_db, "SELECT x FROM t")
        per_row = full["row"].meter.cpu_ms / 10
        _plan, limited = run_engines(tiny_db, "SELECT x FROM t LIMIT 6")

        reference = limited["vector"]
        for engine in ENGINES:
            assert limited[engine].rows == reference.rows
            assert limited[engine].meter.tuples_out == 6
            assert limited[engine].meter.io_ms == reference.meter.io_ms

        scanned = {
            engine: round(limited[engine].meter.cpu_ms / per_row)
            for engine in ENGINES
        }
        assert scanned == {"row": 6, "vector": 8, "columnar": 8}
        # The two batch engines agree bit for bit even under LIMIT.
        assert meter_tuple(limited["columnar"]) == meter_tuple(reference)


# -- operator fast paths ----------------------------------------------------


@pytest.fixture(scope="module")
def ops_db():
    database = Database("ops")
    database.create_table(
        "dim",
        Schema(
            [
                Column("k", ColumnType.INT),
                Column("name", ColumnType.STR),
            ]
        ),
    )
    # Unique build keys (one row per k).
    database.load_rows(
        "dim", [(i, f"name_{i % 3}") for i in range(8)]
    )
    database.create_table(
        "fact",
        Schema(
            [
                Column("k", ColumnType.INT),
                Column("v", ColumnType.FLOAT),
                Column("tag", ColumnType.STR),
            ]
        ),
    )
    database.load_rows(
        "fact",
        [
            (i % 10, float(i), ["x", "y", None][i % 3])
            for i in range(40)
        ],
    )
    database.analyze()
    return database


class TestOperatorFastPaths:
    def test_unique_build_join_full_match(self, ops_db):
        # Every fact row with k < 8 matches exactly one dim row: the
        # passthrough gather path.
        assert_all_equivalent(
            ops_db,
            "SELECT f.v, d.name FROM fact f, dim d "
            "WHERE f.k = d.k AND f.k < 8",
        )

    def test_unique_build_join_partial_match(self, ops_db):
        # k in {8, 9} has no dim row: probe misses interleave with hits.
        assert_all_equivalent(
            ops_db,
            "SELECT f.v, d.name FROM fact f, dim d WHERE f.k = d.k",
        )

    def test_unique_build_outer_join_padding(self, ops_db):
        results = assert_all_equivalent(
            ops_db,
            "SELECT f.v, d.name FROM fact f "
            "LEFT JOIN dim d ON f.k = d.k",
        )
        assert any(
            name is None for _v, name in results["columnar"].rows
        )

    def test_non_unique_build_join(self, ops_db):
        # dim.name repeats: the general multi-match probe path.
        assert_all_equivalent(
            ops_db,
            "SELECT d1.k, d2.k FROM dim d1, dim d2 "
            "WHERE d1.name = d2.name",
        )

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT f.k, COUNT(*) FROM fact f GROUP BY f.k",
            "SELECT f.tag, COUNT(*) FROM fact f GROUP BY f.tag",
            "SELECT f.k, f.tag, COUNT(*) FROM fact f GROUP BY f.k, f.tag",
        ],
        ids=["int-key", "dict-key", "multi-key"],
    )
    def test_count_only_grouping(self, ops_db, sql):
        assert_all_equivalent(ops_db, sql)

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT DISTINCT f.k FROM fact f",
            "SELECT DISTINCT f.tag FROM fact f",
            "SELECT DISTINCT f.v FROM fact f",
            "SELECT DISTINCT f.k, f.tag FROM fact f",
        ],
        ids=["int", "dict-with-null", "float", "multi"],
    )
    def test_distinct_paths(self, ops_db, sql):
        assert_all_equivalent(ops_db, sql)

    def test_dict_aware_like_and_in(self, ops_db):
        assert_all_equivalent(
            ops_db,
            "SELECT f.v FROM fact f WHERE f.tag LIKE 'x%'",
        )
        assert_all_equivalent(
            ops_db,
            "SELECT f.v FROM fact f WHERE f.tag NOT IN ('y')",
        )


# -- profiler and metrics ---------------------------------------------------


class TestObservability:
    SQL = (
        "SELECT f.v, d.name FROM fact f, dim d "
        "WHERE f.k = d.k AND f.v > 10.0"
    )

    def profiles(self, database, sql):
        plan = database.explain(sql)[0].plan
        captured = {}
        for engine in ENGINES:
            with profiling() as profiler:
                execute_plan(
                    plan,
                    database.storage,
                    database.params,
                    engine=engine,
                    batch_size=8,
                )
            captured[engine] = profiler.capture()
        return plan, captured

    def test_profiled_row_counts_identical_across_engines(self, ops_db):
        plan, captured = self.profiles(ops_db, self.SQL)
        nodes = [plan]
        while nodes:
            node = nodes.pop()
            counts = {
                engine: captured[engine].stats_for(node).rows_out
                for engine in ENGINES
            }
            assert len(set(counts.values())) == 1, (
                node.describe(),
                counts,
            )
            nodes.extend(node.children())

    def test_columnar_selectivity_recorded(self, ops_db):
        plan, captured = self.profiles(ops_db, self.SQL)
        profile = captured["columnar"]
        selectivities = [
            stats.selectivity
            for _node, stats in profile.operators()
            if stats.selectivity is not None
        ]
        # The filtered scan keeps a strict subset of its physical slots.
        assert selectivities
        assert any(s < 1.0 for s in selectivities)
        assert all(0.0 <= s <= 1.0 for s in selectivities)
        rendered = render_analyzed_plan(plan, profile)
        assert "sel=" in rendered
        # The row-engine profile never fabricates a selectivity.
        assert all(
            stats.selectivity is None
            for _node, stats in captured["row"].operators()
        )

    def test_engine_metrics_emitted(self, ops_db):
        plan = ops_db.explain(self.SQL)[0].plan
        sink = obs.configure(log_level=None)
        try:
            execute_plan(
                plan,
                ops_db.storage,
                ops_db.params,
                engine="columnar",
                batch_size=8,
            )
            assert (
                sink.metrics.counter_value(
                    "engine_batches_total", engine="columnar"
                )
                > 0
            )
            assert (
                sink.metrics.histogram(
                    "engine_rows_per_sec", engine="columnar"
                ).count
                >= 1
            )
        finally:
            obs.disable()
