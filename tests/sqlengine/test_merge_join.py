"""Unit tests for the sort-merge join operator."""

import pytest

from repro.sqlengine import (
    Column,
    ColumnType,
    MaterializedInput,
    OptimizerConfig,
    Schema,
    SortMergeJoin,
    rows_equal_unordered,
)
from repro.sqlengine.executor import execute_plan
from repro.sqlengine.physical import ExecutionError, HashJoin, SeqScan


def _input(name, rows):
    schema = Schema(
        (Column("k", ColumnType.INT, name), Column("v", ColumnType.STR, name))
    )
    return MaterializedInput(name, schema, rows)


def _run(db, plan):
    return execute_plan(plan, db.storage, db.params)


class TestSortMergeJoinCorrectness:
    def test_matches_hash_join(self, tiny_db):
        emp = SeqScan(tiny_db.catalog.lookup("emp"), "emp")
        dept = SeqScan(tiny_db.catalog.lookup("dept"), "dept")
        merge = SortMergeJoin(emp, dept, ["emp.deptno"], ["dept.deptno"])
        hash_join = HashJoin(
            SeqScan(tiny_db.catalog.lookup("emp"), "emp"),
            SeqScan(tiny_db.catalog.lookup("dept"), "dept"),
            ["emp.deptno"],
            ["dept.deptno"],
        )
        assert rows_equal_unordered(
            _run(tiny_db, merge).rows, _run(tiny_db, hash_join).rows
        )

    def test_duplicate_groups_cross_product(self, tiny_db):
        left = _input("l", [(1, "a"), (1, "b"), (2, "c")])
        right = _input("r", [(1, "x"), (1, "y"), (3, "z")])
        plan = SortMergeJoin(left, right, ["l.k"], ["r.k"])
        result = _run(tiny_db, plan)
        assert rows_equal_unordered(
            result.rows,
            [
                (1, "a", 1, "x"),
                (1, "a", 1, "y"),
                (1, "b", 1, "x"),
                (1, "b", 1, "y"),
            ],
        )

    def test_null_keys_dropped(self, tiny_db):
        left = _input("l", [(None, "a"), (1, "b")])
        right = _input("r", [(1, "x"), (None, "y")])
        plan = SortMergeJoin(left, right, ["l.k"], ["r.k"])
        assert _run(tiny_db, plan).rows == [(1, "b", 1, "x")]

    def test_empty_sides(self, tiny_db):
        left = _input("l", [])
        right = _input("r", [(1, "x")])
        plan = SortMergeJoin(left, right, ["l.k"], ["r.k"])
        assert _run(tiny_db, plan).rows == []

    def test_key_mismatch_rejected(self, tiny_db):
        left = _input("l", [])
        right = _input("r", [])
        with pytest.raises(ExecutionError):
            SortMergeJoin(left, right, [], [])

    def test_meters_work(self, tiny_db):
        left = _input("l", [(i, "a") for i in range(50)])
        right = _input("r", [(i, "b") for i in range(50)])
        plan = SortMergeJoin(left, right, ["l.k"], ["r.k"])
        result = _run(tiny_db, plan)
        assert result.meter.cpu_ms > 0


class TestOptimizerIntegration:
    def test_disabled_by_default(self, tiny_db):
        plans = tiny_db.explain(
            "SELECT e.empno FROM emp e JOIN dept d ON e.deptno = d.deptno"
        )
        for candidate in plans:
            assert "SortMergeJoin" not in candidate.plan.explain()

    def test_enabled_produces_merge_alternative(self, tiny_db):
        from repro.sqlengine.logical import bind
        from repro.sqlengine.optimizer import Optimizer
        from repro.sqlengine.parser import parse

        config = OptimizerConfig(
            keep_alternatives=6, enable_merge_join=True
        )
        block = bind(
            parse("SELECT e.empno FROM emp e JOIN dept d ON e.deptno = d.deptno"),
            tiny_db.catalog,
        )
        plans = Optimizer(tiny_db.profile, config).optimize(block)
        assert any(
            "SortMergeJoin" in c.plan.explain() for c in plans
        )
        # All alternatives still agree on the result.
        reference = tiny_db.run_plan(plans[0].plan).rows
        for candidate in plans[1:]:
            assert rows_equal_unordered(
                tiny_db.run_plan(candidate.plan).rows, reference
            )

    def test_estimate_cost_positive_and_blocking(self, tiny_db):
        from repro.sqlengine.cost import StatsContext
        from repro.sqlengine.physical import CostEstimator

        emp = SeqScan(tiny_db.catalog.lookup("emp"), "emp")
        dept = SeqScan(tiny_db.catalog.lookup("dept"), "dept")
        plan = SortMergeJoin(emp, dept, ["emp.deptno"], ["dept.deptno"])
        estimator = CostEstimator(
            tiny_db.params,
            tiny_db.profile,
            StatsContext(
                {
                    "emp": tiny_db.catalog.lookup("emp").stats,
                    "dept": tiny_db.catalog.lookup("dept").stats,
                }
            ),
        )
        cost = plan.estimate_cost(estimator)
        assert cost.total > 0
        # Blocking operator: first tuple arrives near the end.
        assert cost.first_tuple > cost.total * 0.5
