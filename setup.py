"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` requires building an editable wheel; in fully offline
environments without `wheel`, `python setup.py develop` provides the same
editable install via an egg-link.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
